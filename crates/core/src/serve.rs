//! The persistent batch service behind `scalesim serve`.
//!
//! Speaks the JSON-lines wire protocol of [`scalesim_api::wire`] over
//! two transports, both std-lib only:
//!
//! * **stdio** — one request per stdin line, one response per stdout
//!   line, flushed per response; EOF ends the session. Ideal for
//!   driving the simulator as a subprocess.
//! * **TCP** (`--listen`) — each connection is an independent
//!   JSON-lines session on its own thread.
//!
//! ## Serving model
//!
//! A [`Server`] owns a **bounded admission queue** drained by **runner
//! tasks on the process-wide scheduler**
//! ([`scalesim_sched::Scheduler::global`]) — there are no dedicated
//! worker threads. Session threads do only O(1) work: they frame
//! lines, decode requests, and answer decode errors, `version` and
//! `stats` inline; simulation requests (`run`, `sweep`, `scaleout`,
//! `area`) are queued, and at most [`ServeOptions::workers`] runner
//! tasks execute them concurrently. Because a runner executes its
//! request *on* the scheduler, the request's per-layer tasks fan out
//! to every idle worker — one in-flight request with a long topology
//! uses the whole machine instead of a single pool thread. The queue
//! is two-class: `run`/`scaleout`/`area` requests are interactive and
//! pop before queued `sweep`s, and a sweep's own layer tasks carry
//! [`scalesim_sched::Priority::Batch`] so interactive layers outrank
//! them inside the scheduler too.
//!
//! When the queue is full the request is **shed immediately** with a
//! typed `busy` error (exit code 75) instead of stalling the session —
//! and when the session cap is reached, a new connection is answered
//! with one `busy` line and closed rather than left hanging in the
//! accept backlog. A loaded server therefore always answers
//! *something*, quickly.
//!
//! Each session keeps at most one request in flight, so responses are
//! written in request order regardless of pool size — and because each
//! request builds its own engine and results are written back by
//! index, responses are byte-identical to one-shot CLI runs for
//! **any** worker count and any `SCALESIM_THREADS` value (pinned by
//! `tests/serve_stress.rs` and `tests/sched_determinism.rs`).
//!
//! Requests may carry a `deadline_ms` envelope field: a
//! [`CancelToken`] starts at decode time (so queue wait counts against
//! the budget) and is checked at stage boundaries; an expired request
//! answers a typed `deadline` error (exit code 124), never a partial
//! body.
//!
//! Knobs (all environment variables, all positive integers):
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `SCALESIM_SERVE_WORKERS` | concurrent in-flight simulation requests | machine parallelism |
//! | `SCALESIM_SERVE_QUEUE` | admission-queue depth | 2 × workers |
//! | `SCALESIM_SERVE_SESSIONS` | concurrent TCP sessions | machine parallelism |
//! | `SCALESIM_CACHE_BUDGET_MB` | plan-cache byte budget | count-capped |
//!
//! (`SCALESIM_THREADS` separately sizes the scheduler the runners and
//! their layer tasks execute on; see `docs/CLI.md`.)
//!
//! All sessions share one [`SimService`] — and therefore one
//! [`PlanCache`](scalesim_systolic::PlanCache) and one set of
//! [`ServeMetrics`](crate::metrics::ServeMetrics) — so repeated
//! workloads hit warm plans across connections and a `stats` request
//! sees the whole process.
//!
//! **No request can kill the process.** Malformed JSON, bad
//! configurations and bad topologies surface as typed error responses;
//! a panic inside request handling (always a bug) is caught per request
//! and reported as an `internal` error, leaving the server able to
//! answer the next line.

use crate::cancel::CancelToken;
use crate::service::SimService;
use scalesim_api::{wire, SimError, SimRequest};
use scalesim_obs as obs;
use scalesim_sched::{Priority, Scheduler};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Process-wide request correlation number: every request that enters
/// the serve layer (any route) gets the next value, and all its trace
/// events carry it as the `req` arg — Perfetto's args search then pulls
/// up a request's full decode → queue → execute → respond lifecycle.
fn next_request_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Handles one request line inline (no worker pool), producing exactly
/// one response line (without the trailing newline). Honors the
/// envelope's `deadline_ms` and records metrics. Never panics.
pub fn handle_line(service: &SimService, line: &str) -> String {
    let started = Instant::now();
    let seq = next_request_seq();
    let m = service.metrics();
    m.inc(&m.requests_total);
    m.inc(&m.in_flight);
    let decoded = wire::decode_request_full(line);
    obs::instant(obs::Category::Serve, "decode", &[("req", seq)]);
    let cancel = decoded.deadline_ms.map(CancelToken::after_ms);
    execute(
        service,
        decoded.id.as_deref(),
        decoded.request,
        cancel.as_ref(),
        started,
        seq,
    )
}

/// Runs one decoded request to a response line, with panic isolation
/// and metrics accounting (deadline count, completion, latency,
/// in-flight decrement). The single execution path for workers, the
/// inline fast path and [`handle_line`], so every route counts alike.
fn execute(
    service: &SimService,
    id: Option<&str>,
    request: Result<SimRequest, SimError>,
    cancel: Option<&CancelToken>,
    started: Instant,
    seq: u64,
) -> String {
    // Everything between the dispatch timestamp and this point is
    // admission-queue wait (zero for inline routes).
    obs::complete_since(obs::Category::Serve, "queue", started, &[("req", seq)]);
    let _span = obs::span(obs::Category::Serve, "execute").arg("req", seq);
    let result = match request {
        Ok(request) => catch_unwind(AssertUnwindSafe(|| {
            service.handle_cancellable(&request, cancel)
        }))
        .unwrap_or_else(|payload| Err(SimError::from_panic(payload))),
        Err(e) => Err(e),
    };
    let m = service.metrics();
    if matches!(&result, Err(e) if e.kind() == "deadline") {
        m.inc(&m.deadline_expired);
    }
    let line = wire::encode_response(id, &result);
    m.inc(&m.completed);
    m.latency
        .record_us(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
    m.dec_in_flight();
    line
}

/// Maximum bytes a single request line may occupy (newline excluded).
/// Without a cap, a client streaming data with no newline would grow
/// the line buffer until the process dies of OOM — the one failure mode
/// an in-band error can't report after the fact. Oversized lines are
/// drained (without buffering) and answered with a typed `config`
/// error; the session stays up. 16 MiB comfortably fits the largest
/// inline config + topology the simulator itself could handle.
pub const MAX_REQUEST_BYTES: usize = 16 * 1024 * 1024;

/// Sizing for a [`Server`]: in-flight request cap, admission queue and
/// session cap. Every field is clamped to at least 1.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Maximum simulation requests executing concurrently (the number
    /// of runner tasks draining the admission queue on the shared
    /// scheduler). Actual thread parallelism comes from the scheduler
    /// itself (`SCALESIM_THREADS`): fewer in-flight requests than
    /// scheduler workers means each request fans its layers wider.
    pub workers: usize,
    /// Admission-queue depth; a simulation request arriving with the
    /// queue full is shed with a typed `busy` error.
    pub queue_depth: usize,
    /// Concurrent TCP sessions; a connection beyond the cap is
    /// answered with one `busy` line and closed.
    pub max_sessions: usize,
}

impl ServeOptions {
    /// Sizing from the environment: `SCALESIM_SERVE_WORKERS`,
    /// `SCALESIM_SERVE_QUEUE` (default 2 × workers) and
    /// `SCALESIM_SERVE_SESSIONS`, falling back to the machine
    /// parallelism [`scalesim_systolic::num_threads`] honors.
    pub fn from_env() -> Self {
        let workers = env_usize("SCALESIM_SERVE_WORKERS")
            .unwrap_or_else(scalesim_systolic::num_threads)
            .max(1);
        let queue_depth = env_usize("SCALESIM_SERVE_QUEUE")
            .unwrap_or(2 * workers)
            .max(1);
        let max_sessions = env_usize("SCALESIM_SERVE_SESSIONS")
            .unwrap_or_else(scalesim_systolic::num_threads)
            .max(1);
        Self {
            workers,
            queue_depth,
            max_sessions,
        }
    }
}

/// Parses a positive integer environment variable (unset, empty,
/// unparsable or zero all read as "not configured").
fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// One admitted simulation request, parked in the queue until a runner
/// picks it up. The session thread blocks on `reply` — one job in
/// flight per session keeps responses in request order.
struct Job {
    id: Option<String>,
    request: SimRequest,
    priority: Priority,
    cancel: Option<CancelToken>,
    started: Instant,
    seq: u64,
    reply: mpsc::SyncSender<String>,
}

/// The task class a request executes under: queued `sweep`s are batch
/// work, everything else is interactive.
fn priority_of(request: &SimRequest) -> Priority {
    match request {
        SimRequest::Sweep(_) => Priority::Batch,
        _ => Priority::Interactive,
    }
}

/// The bounded two-class admission queue, drained by **runner tasks**
/// on the shared scheduler instead of dedicated threads. `try_push`
/// sheds instead of blocking and reports (under the same lock that
/// admitted the job) whether the caller must launch a new runner, so
/// at most `max_runners` jobs execute concurrently and a runner always
/// exists while jobs are queued. Interactive jobs pop before batch
/// jobs. After shutdown the queue drains fully — every admitted job
/// still gets a reply.
struct JobQueue {
    state: Mutex<QueueState>,
    /// Signalled when the last runner retires (`runners == 0`).
    drained: Condvar,
    capacity: usize,
    max_runners: usize,
}

struct QueueState {
    interactive: std::collections::VecDeque<Box<Job>>,
    batch: std::collections::VecDeque<Box<Job>>,
    runners: usize,
    shutdown: bool,
}

impl QueueState {
    fn len(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }
}

impl JobQueue {
    fn new(capacity: usize, max_runners: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                interactive: std::collections::VecDeque::new(),
                batch: std::collections::VecDeque::new(),
                runners: 0,
                shutdown: false,
            }),
            drained: Condvar::new(),
            capacity: capacity.max(1),
            max_runners: max_runners.max(1),
        }
    }

    /// Admits a job, or hands it back when the queue is full (or the
    /// server is shutting down) — the caller sheds it with `busy`. On
    /// admission, `Ok(true)` tells the caller to launch a new runner
    /// task (the runner count was reserved under this lock).
    fn try_push(&self, job: Box<Job>) -> Result<bool, Box<Job>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.shutdown || state.len() >= self.capacity {
            return Err(job);
        }
        match job.priority {
            Priority::Interactive => state.interactive.push_back(job),
            Priority::Batch => state.batch.push_back(job),
        }
        if state.runners < self.max_runners {
            state.runners += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// The runner loop step: the next job (interactive first), or
    /// `None` when the queue is empty — which *retires the calling
    /// runner* (its slot is released under the lock, so a later
    /// `try_push` will launch a replacement).
    fn next_job_or_retire(&self) -> Option<Box<Job>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(job) = state
            .interactive
            .pop_front()
            .or_else(|| state.batch.pop_front())
        {
            return Some(job);
        }
        state.runners -= 1;
        if state.runners == 0 {
            drop(state);
            self.drained.notify_all();
        }
        None
    }

    /// Stops admission and blocks until every runner has retired —
    /// runners only retire on an empty queue, so all admitted jobs
    /// have been answered when this returns.
    fn shutdown_and_drain(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.shutdown = true;
        while state.runners > 0 {
            state = self.drained.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A counting semaphore bounding concurrent session threads.
/// Non-blocking: a session that cannot get a slot is shed, never
/// queued.
struct Gate {
    available: Mutex<usize>,
}

impl Gate {
    fn new(slots: usize) -> Self {
        Self {
            available: Mutex::new(slots.max(1)),
        }
    }

    fn try_acquire(&self) -> bool {
        let mut available = self.available.lock().unwrap_or_else(|e| e.into_inner());
        if *available == 0 {
            return false;
        }
        *available -= 1;
        true
    }

    fn release(&self) {
        let mut available = self.available.lock().unwrap_or_else(|e| e.into_inner());
        *available += 1;
    }
}

/// The production serve loop: a bounded admission queue drained by
/// runner tasks on the process-wide scheduler (see the module docs for
/// the full model). Dropping the server stops admission and waits for
/// every runner to retire; admitted jobs finish first.
#[derive(Debug)]
pub struct Server {
    service: SimService,
    queue: Arc<JobQueue>,
    options: ServeOptions,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Builds the server. No threads are spawned here: simulation
    /// requests execute as runner tasks of the process-wide scheduler,
    /// launched on demand as jobs are admitted (and retired when the
    /// queue runs dry). All runners share the service's plan cache and
    /// metrics (the service clone is two `Arc` bumps).
    pub fn new(service: SimService, options: ServeOptions) -> Self {
        let options = ServeOptions {
            workers: options.workers.max(1),
            queue_depth: options.queue_depth.max(1),
            max_sessions: options.max_sessions.max(1),
        };
        let queue = Arc::new(JobQueue::new(options.queue_depth, options.workers));
        Self {
            service,
            queue,
            options,
        }
    }

    /// Launches one runner task on the shared scheduler. The runner
    /// drains jobs until the queue is empty, then retires; `try_push`
    /// launches a replacement the moment new work is admitted, keeping
    /// the invariant "jobs queued ⇒ a runner exists" without any
    /// always-on thread.
    fn launch_runner(&self, priority: Priority) {
        let service = self.service.clone();
        let queue = Arc::clone(&self.queue);
        Scheduler::global().spawn_detached(
            priority,
            Box::new(move || {
                while let Some(job) = queue.next_job_or_retire() {
                    let Job {
                        id,
                        request,
                        priority,
                        cancel,
                        started,
                        seq,
                        reply,
                    } = *job;
                    // The request's nested layer/sweep tasks inherit
                    // its class via the ambient priority.
                    let line = scalesim_sched::with_priority(priority, || {
                        execute(
                            &service,
                            id.as_deref(),
                            Ok(request),
                            cancel.as_ref(),
                            started,
                            seq,
                        )
                    });
                    // A send only fails if the session vanished; the
                    // work is already accounted.
                    let _ = reply.send(line);
                }
            }),
        );
    }

    /// The server's resolved sizing.
    pub fn options(&self) -> ServeOptions {
        self.options
    }

    /// The shared service (cache + metrics) behind this server.
    pub fn service(&self) -> &SimService {
        &self.service
    }

    /// Serves one JSON-lines session: reads request lines from `input`
    /// until EOF, writing one response line per request to `output`
    /// (flushed per response). Blank lines are ignored; a line that is
    /// not valid UTF-8, or longer than [`MAX_REQUEST_BYTES`], answers a
    /// typed `config` error like any other malformed request — it does
    /// not end the session.
    ///
    /// # Errors
    ///
    /// Returns the first transport-level I/O failure; request-level
    /// failures are answered in-band and do not end the session.
    pub fn serve_session(
        &self,
        input: impl BufRead,
        mut output: impl Write,
    ) -> std::io::Result<()> {
        let m = self.service.metrics();
        // `take` caps how much one line may buffer; two extra bytes
        // leave room for a `\r\n` terminator, so the cap applies to the
        // *content* (a CRLF client gets the same budget as a bare-LF
        // one). The limit is restored before each line.
        let limit = MAX_REQUEST_BYTES as u64 + 2;
        let mut input = input.take(limit);
        let mut buf = Vec::new();
        loop {
            buf.clear();
            input.set_limit(limit);
            if input.read_until(b'\n', &mut buf)? == 0 {
                return Ok(());
            }
            let newline_terminated = buf.last() == Some(&b'\n');
            if newline_terminated {
                buf.pop();
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
            }
            if buf.len() > MAX_REQUEST_BYTES {
                // The line was never buffered whole, so its "id" (if
                // any) cannot be echoed; pipelined clients fall back to
                // response order (documented in docs/API.md). Drain the
                // rest of the line through the unlimited inner reader.
                let newline_found = newline_terminated || skip_to_newline(input.get_mut())?;
                m.inc(&m.requests_total);
                m.inc(&m.completed);
                let response = wire::encode_response(
                    None,
                    &Err(SimError::Config(format!(
                        "request line exceeds {MAX_REQUEST_BYTES} bytes"
                    ))),
                );
                output.write_all(response.as_bytes())?;
                output.write_all(b"\n")?;
                output.flush()?;
                if newline_found {
                    continue;
                }
                return Ok(()); // EOF mid-line: nothing left to serve
            }
            let response = match std::str::from_utf8(&buf) {
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => self.dispatch_line(line),
                Err(e) => {
                    m.inc(&m.requests_total);
                    m.inc(&m.completed);
                    wire::encode_response(
                        None,
                        &Err(SimError::Config(format!(
                            "request line is not valid UTF-8: {e}"
                        ))),
                    )
                }
            };
            output.write_all(response.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
        }
    }

    /// Routes one decoded line: decode errors, `version` and `stats`
    /// answer inline on the session thread (they never need a worker
    /// slot); simulation requests go through the admission queue and
    /// are shed with `busy` when it is full. The deadline clock starts
    /// here, so queue wait counts against `deadline_ms`.
    fn dispatch_line(&self, line: &str) -> String {
        let started = Instant::now();
        let seq = next_request_seq();
        let decoded = wire::decode_request_full(line);
        obs::instant(obs::Category::Serve, "decode", &[("req", seq)]);
        let m = self.service.metrics();
        m.inc(&m.requests_total);
        let cancel = decoded.deadline_ms.map(CancelToken::after_ms);
        let response = match decoded.request {
            Err(_) | Ok(SimRequest::Version) | Ok(SimRequest::Stats) | Ok(SimRequest::Trace) => {
                m.inc(&m.in_flight);
                execute(
                    &self.service,
                    decoded.id.as_deref(),
                    decoded.request,
                    cancel.as_ref(),
                    started,
                    seq,
                )
            }
            Ok(request) => {
                m.inc(&m.in_flight);
                let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                let id = decoded.id.clone();
                let priority = priority_of(&request);
                let job = Box::new(Job {
                    id: decoded.id,
                    request,
                    priority,
                    cancel,
                    started,
                    seq,
                    reply: reply_tx,
                });
                match self.queue.try_push(job) {
                    Ok(launch) => {
                        if launch {
                            self.launch_runner(priority);
                        }
                        reply_rx.recv().unwrap_or_else(|_| {
                            wire::encode_response(
                                id.as_deref(),
                                &Err(SimError::Internal(
                                    "worker pool shut down mid-request".into(),
                                )),
                            )
                        })
                    }
                    Err(job) => {
                        m.dec_in_flight();
                        m.inc(&m.shed);
                        wire::encode_response(
                            job.id.as_deref(),
                            &Err(SimError::Busy("admission queue full; retry later".into())),
                        )
                    }
                }
            }
        };
        obs::instant(obs::Category::Serve, "respond", &[("req", seq)]);
        response
    }

    /// Accepts connections forever, serving each as a JSON-lines
    /// session on its own thread, at most
    /// [`ServeOptions::max_sessions`] at once. A connection beyond the
    /// cap is answered with one typed `busy` line and closed — it is
    /// never left hanging in the accept backlog.
    ///
    /// # Errors
    ///
    /// Returns the first *fatal* `accept` failure. Transient ones — a
    /// connection aborted before we accepted it, an interrupted
    /// syscall, or file-descriptor exhaustion under load (EMFILE/
    /// ENFILE, retried after a short backoff) — are survived, since a
    /// server meant to run forever must not be shut down by a blip.
    /// Per-connection I/O failures (e.g. a client disconnecting
    /// mid-request) end that session only.
    pub fn serve_listener(&self, listener: TcpListener) -> std::io::Result<()> {
        let gate = Gate::new(self.options.max_sessions);
        // The loop only exits by returning a fatal accept error; the
        // scope then joins any sessions still draining.
        std::thread::scope(|scope| loop {
            let (mut stream, _peer) = match listener.accept() {
                Ok(accepted) => accepted,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                // ENFILE (23) / EMFILE (24) on Unix: out of descriptors
                // — sessions finishing will free some. WouldBlock only
                // happens on a listener the caller made nonblocking;
                // the sleep turns that into a slow poll rather than a
                // hot spin.
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || (cfg!(unix) && matches!(e.raw_os_error(), Some(23 | 24))) =>
                {
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    continue;
                }
                Err(e) => return Err(e),
            };
            if !gate.try_acquire() {
                let m = self.service.metrics();
                m.inc(&m.requests_total);
                m.inc(&m.shed);
                let line = wire::encode_response(
                    None,
                    &Err(SimError::Busy("session limit reached; retry later".into())),
                );
                let _ = stream
                    .write_all(line.as_bytes())
                    .and_then(|_| stream.write_all(b"\n"));
                continue; // dropping the stream closes the connection
            }
            let gate = &gate;
            scope.spawn(move || {
                static SESSION_SEQ: AtomicU64 = AtomicU64::new(1);
                let n = SESSION_SEQ.fetch_add(1, Ordering::Relaxed);
                obs::label_thread(&format!("session-{n}"));
                let _ = self.serve_connection(stream);
                gate.release();
            });
        })
    }

    fn serve_connection(&self, stream: TcpStream) -> std::io::Result<()> {
        let reader = BufReader::new(stream.try_clone()?);
        self.serve_session(reader, stream)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.queue.shutdown_and_drain();
    }
}

/// Serves one JSON-lines session with a pool sized from the
/// environment (see [`Server::serve_session`] for semantics).
///
/// # Errors
///
/// Returns the first transport-level I/O failure.
pub fn serve_session(
    service: &SimService,
    input: impl BufRead,
    output: impl Write,
) -> std::io::Result<()> {
    Server::new(service.clone(), ServeOptions::from_env()).serve_session(input, output)
}

/// Accepts connections forever with a pool sized from the environment
/// and the given session cap (see [`Server::serve_listener`] for
/// semantics).
///
/// # Errors
///
/// Returns the first fatal `accept` failure.
pub fn serve_listener(
    service: &SimService,
    listener: TcpListener,
    max_connections: usize,
) -> std::io::Result<()> {
    let mut options = ServeOptions::from_env();
    options.max_sessions = max_connections.max(1);
    Server::new(service.clone(), options).serve_listener(listener)
}

/// Discards input up to and including the next `\n`, in buffer-sized
/// chunks so an arbitrarily long line costs O(1) memory. Returns
/// whether a newline was found (false means EOF ended the line).
fn skip_to_newline(input: &mut impl BufRead) -> std::io::Result<bool> {
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return Ok(false);
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => {
                input.consume(i + 1);
                return Ok(true);
            }
            None => {
                let len = chunk.len();
                input.consume(len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_api::{wire, SimRequest, SimResponse};
    use std::io::Cursor;

    fn run_line(id: &str) -> String {
        format!(
            "{{\"api\": 1, \"id\": \"{id}\", \"run\": {{\"topology\": \
             {{\"name\": \"t\", \"inline\": \"a, 16, 16, 16,\\n\"}}}}}}"
        )
    }

    fn small_server() -> Server {
        Server::new(
            SimService::new(),
            ServeOptions {
                workers: 2,
                queue_depth: 4,
                max_sessions: 2,
            },
        )
    }

    #[test]
    fn session_answers_one_line_per_request_and_skips_blanks() {
        let server = small_server();
        let input = format!(
            "{}\n\n{}\n",
            run_line("r1"),
            "{\"api\": 1, \"version\": {}}"
        );
        let mut out = Vec::new();
        server.serve_session(Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        let (id, first) = wire::decode_response(lines[0]);
        assert_eq!(id.as_deref(), Some("r1"));
        assert!(matches!(first.unwrap(), SimResponse::Run(_)));
        let (_, second) = wire::decode_response(lines[1]);
        assert!(matches!(second.unwrap(), SimResponse::Version(_)));
    }

    #[test]
    fn malformed_requests_answer_in_band_and_do_not_end_the_session() {
        let server = small_server();
        let input = format!(
            "this is not json\n{{\"api\": 1, \"id\": \"x\", \"frob\": {{}}}}\n{}\n",
            run_line("r2")
        );
        let mut out = Vec::new();
        server.serve_session(Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(wire::decode_response(lines[0]).1.is_err());
        let (id, second) = wire::decode_response(lines[1]);
        assert_eq!(id.as_deref(), Some("x"), "id echoed on bad envelopes");
        assert!(second.is_err());
        assert!(wire::decode_response(lines[2]).1.is_ok(), "still serving");
    }

    #[test]
    fn non_utf8_lines_answer_a_typed_error_and_keep_the_session_alive() {
        let server = small_server();
        let mut input = Vec::new();
        input.extend_from_slice(&[0xFF, 0xFE, b'\n']); // invalid UTF-8
        input.extend_from_slice(b"{\"api\": 1, \"id\": \"after\", \"version\": {}}\n");
        let mut out = Vec::new();
        server.serve_session(Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "both lines answered: {text}");
        let (_, first) = wire::decode_response(lines[0]);
        let err = first.unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.message().contains("UTF-8"), "{err}");
        let (id, second) = wire::decode_response(lines[1]);
        assert_eq!(id.as_deref(), Some("after"), "session kept serving");
        assert!(second.is_ok());
    }

    #[test]
    fn oversized_lines_answer_a_typed_error_and_keep_the_session_alive() {
        let server = small_server();
        let mut input = vec![b'['; MAX_REQUEST_BYTES + 1];
        input.push(b'\n');
        input.extend_from_slice(b"{\"api\": 1, \"id\": \"after\", \"version\": {}}\n");
        let mut out = Vec::new();
        server.serve_session(Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        let (_, first) = wire::decode_response(lines[0]);
        let err = first.unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.message().contains("exceeds"), "{err}");
        let (id, second) = wire::decode_response(lines[1]);
        assert_eq!(id.as_deref(), Some("after"), "session kept serving");
        assert!(second.is_ok());
    }

    #[test]
    fn the_line_limit_covers_content_not_the_terminator() {
        // Exactly MAX_REQUEST_BYTES of content must be accepted
        // whether the line ends in \n or \r\n (a CRLF client gets the
        // same budget); one byte more is rejected as oversized.
        let server = small_server();
        for (content_len, terminator, expect_oversized) in [
            (MAX_REQUEST_BYTES, "\n", false),
            (MAX_REQUEST_BYTES, "\r\n", false),
            (MAX_REQUEST_BYTES + 1, "\n", true),
        ] {
            let mut input = vec![b'z'; content_len];
            input.extend_from_slice(terminator.as_bytes());
            let mut out = Vec::new();
            server.serve_session(Cursor::new(input), &mut out).unwrap();
            let text = String::from_utf8(out).unwrap();
            let (_, result) = wire::decode_response(text.trim_end());
            let err = result.unwrap_err();
            assert_eq!(
                err.message().contains("exceeds"),
                expect_oversized,
                "{content_len} bytes + {terminator:?}: {err}"
            );
            if !expect_oversized {
                // At the limit the line is processed normally — it is
                // just not valid JSON.
                assert!(err.message().contains("JSON"), "{err}");
            }
        }
    }

    #[test]
    fn oversized_line_ending_in_eof_still_gets_an_answer() {
        let server = small_server();
        let input = vec![b'x'; MAX_REQUEST_BYTES + 7]; // no newline at all
        let mut out = Vec::new();
        server.serve_session(Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let (_, result) = wire::decode_response(text.trim_end());
        assert_eq!(result.unwrap_err().kind(), "config");
    }

    #[test]
    fn deeply_nested_json_is_a_parse_error_not_a_stack_overflow() {
        let service = SimService::new();
        let response = handle_line(&service, &"[".repeat(400_000));
        let (_, result) = wire::decode_response(&response);
        let err = result.unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.message().contains("nested"), "{err}");
    }

    #[test]
    fn bad_config_is_a_typed_response_not_a_crash() {
        let service = SimService::new();
        let request = "{\"api\": 1, \"run\": {\"config\": {\"inline\": \"ArrayHieght : 2\\n\"}, \
                       \"topology\": {\"inline\": \"a, 8, 8, 8,\\n\"}}}";
        let response = handle_line(&service, request);
        let (_, result) = wire::decode_response(&response);
        let err = result.unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.message().contains("arrayhieght"), "{err}");
    }

    #[test]
    fn handle_line_reports_panics_as_internal_errors() {
        // No request should panic the service; force one through the
        // catch_unwind backstop to prove the wrapper holds.
        let caught = catch_unwind(AssertUnwindSafe(|| -> String { panic!("injected") }))
            .map_err(SimError::from_panic);
        let line = wire::encode_response(None, &Err(caught.unwrap_err()));
        let (_, result) = wire::decode_response(&line);
        let err = result.unwrap_err();
        assert_eq!(err.kind(), "internal");
        assert_eq!(err.exit_code(), 70);
        assert!(err.message().contains("injected"));
    }

    #[test]
    fn gate_sheds_instead_of_blocking_past_the_cap() {
        let gate = Gate::new(2);
        assert!(gate.try_acquire());
        assert!(gate.try_acquire());
        assert!(!gate.try_acquire(), "third session must be shed");
        gate.release();
        assert!(gate.try_acquire());
        gate.release();
        gate.release();
    }

    fn make_job(priority: Priority) -> (Box<Job>, mpsc::Receiver<String>) {
        let (tx, rx) = mpsc::sync_channel(1);
        (
            Box::new(Job {
                id: None,
                request: SimRequest::Version,
                priority,
                cancel: None,
                started: Instant::now(),
                seq: 0,
                reply: tx,
            }),
            rx,
        )
    }

    #[test]
    fn job_queue_sheds_when_full_and_drains_after_shutdown() {
        let queue = JobQueue::new(2, 1);
        let (a, _ra) = make_job(Priority::Interactive);
        let (b, _rb) = make_job(Priority::Interactive);
        let (c, _rc) = make_job(Priority::Interactive);
        assert_eq!(
            queue.try_push(a).ok(),
            Some(true),
            "the first admission reserves the one runner slot"
        );
        assert_eq!(
            queue.try_push(b).ok(),
            Some(false),
            "the runner cap is reached, no second runner"
        );
        assert!(queue.try_push(c).is_err(), "queue at capacity sheds");
        let mut state = queue.state.lock().unwrap();
        state.shutdown = true;
        drop(state);
        let (d, _rd) = make_job(Priority::Interactive);
        assert!(queue.try_push(d).is_err(), "a closed queue admits nothing");
        // Admitted jobs still drain after shutdown...
        assert!(queue.next_job_or_retire().is_some());
        assert!(queue.next_job_or_retire().is_some());
        // ...and only an empty queue retires the runner.
        assert!(queue.next_job_or_retire().is_none());
        // With the runner retired, a drain-wait returns immediately.
        queue.shutdown_and_drain();
    }

    #[test]
    fn job_queue_pops_interactive_before_batch_and_relaunches_runners() {
        let queue = JobQueue::new(8, 1);
        let (sweep, _rs) = make_job(Priority::Batch);
        let (run, _rr) = make_job(Priority::Interactive);
        assert_eq!(queue.try_push(sweep).ok(), Some(true));
        assert_eq!(queue.try_push(run).ok(), Some(false));
        let first = queue.next_job_or_retire().expect("two jobs queued");
        assert_eq!(
            first.priority,
            Priority::Interactive,
            "the later interactive job overtakes the queued sweep"
        );
        let second = queue.next_job_or_retire().expect("the sweep is next");
        assert_eq!(second.priority, Priority::Batch);
        assert!(queue.next_job_or_retire().is_none(), "runner retires");
        // After retirement the next admission reserves a fresh runner.
        let (late, _rl) = make_job(Priority::Interactive);
        assert_eq!(
            queue.try_push(late).ok(),
            Some(true),
            "a retired runner's slot is reusable"
        );
    }

    #[test]
    fn deadline_zero_answers_a_typed_deadline_and_counts_it() {
        let server = small_server();
        let input = "{\"api\": 1, \"id\": \"late\", \"deadline_ms\": 0, \"run\": {\"topology\": \
             {\"name\": \"t\", \"inline\": \"a, 16, 16, 16,\\n\"}}}\n\
             {\"api\": 1, \"id\": \"s\", \"stats\": {}}\n"
            .to_string();
        let mut out = Vec::new();
        server.serve_session(Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        let (id, first) = wire::decode_response(lines[0]);
        assert_eq!(id.as_deref(), Some("late"));
        let err = first.unwrap_err();
        assert_eq!(err.kind(), "deadline");
        assert_eq!(err.exit_code(), 124);
        assert_eq!(err.message(), "deadline of 0 ms exceeded");
        let (_, second) = wire::decode_response(lines[1]);
        let SimResponse::Stats(stats) = second.unwrap() else {
            panic!("expected stats body")
        };
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.requests_total, 2);
        assert_eq!(stats.completed, 1, "the stats request itself is mid-flight");
        assert_eq!(stats.in_flight, 1, "the stats request counts itself");
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.latency_count, 1);
    }

    #[test]
    fn a_generous_deadline_changes_no_bytes() {
        let server = small_server();
        let with_deadline =
            "{\"api\": 1, \"id\": \"x\", \"deadline_ms\": 600000, \"run\": {\"topology\": \
             {\"name\": \"t\", \"inline\": \"a, 16, 16, 16,\\n\"}}}";
        let input = format!("{}\n{}\n", with_deadline, run_line("x"));
        let mut out = Vec::new();
        server.serve_session(Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert_eq!(
            lines[0], lines[1],
            "a live deadline costs checks, not bytes"
        );
    }

    #[test]
    fn sessions_past_the_cap_get_one_busy_line_and_a_close() {
        let server = Arc::new(Server::new(
            SimService::new(),
            ServeOptions {
                workers: 1,
                queue_depth: 1,
                max_sessions: 1,
            },
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            // The accept loop runs forever, so it lives on a *detached*
            // thread parked in accept() when the test ends (a scoped
            // thread would deadlock the scope join).
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let _ = server.serve_listener(listener);
            });
        }
        // First client occupies the only session slot (and proves the
        // session is established by completing a request).
        let mut first = TcpStream::connect(addr).unwrap();
        first
            .write_all(b"{\"api\": 1, \"id\": \"v\", \"version\": {}}\n")
            .unwrap();
        let mut reader = BufReader::new(first.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(wire::decode_response(response.trim_end()).1.is_ok());
        // Second client is over the cap: one busy line, then EOF.
        let second = TcpStream::connect(addr).unwrap();
        let mut busy_reader = BufReader::new(second);
        let mut busy = String::new();
        busy_reader.read_line(&mut busy).unwrap();
        let (_, result) = wire::decode_response(busy.trim_end());
        let err = result.unwrap_err();
        assert_eq!(err.kind(), "busy");
        assert_eq!(err.exit_code(), 75);
        assert_eq!(err.message(), "session limit reached; retry later");
        let mut rest = String::new();
        assert_eq!(busy_reader.read_line(&mut rest).unwrap(), 0, "closed");
        // The shed connection shows up in stats, asked over the
        // still-open first session.
        first
            .write_all(b"{\"api\": 1, \"id\": \"s\", \"stats\": {}}\n")
            .unwrap();
        let mut stats_line = String::new();
        reader.read_line(&mut stats_line).unwrap();
        let (_, result) = wire::decode_response(stats_line.trim_end());
        let SimResponse::Stats(stats) = result.unwrap() else {
            panic!("expected stats body")
        };
        assert_eq!(stats.shed, 1);
    }

    #[test]
    fn tcp_sessions_share_the_plan_cache() {
        let server = small_server();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Serve exactly two connections, then stop.
                for _ in 0..2 {
                    let (stream, _) = listener.accept().unwrap();
                    let _ = server.serve_connection(stream);
                }
            });
            let request = SimRequest::from_json(
                "run",
                &scalesim_api::json::Json::parse(
                    "{\"topology\": {\"name\": \"t\", \"inline\": \"a, 16, 16, 16,\\n\"}}",
                )
                .unwrap(),
            )
            .unwrap();
            let mut bodies = Vec::new();
            for _ in 0..2 {
                let mut stream = TcpStream::connect(addr).unwrap();
                let line = wire::encode_request(None, &request);
                stream.write_all(line.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                // Half-close so the server session sees EOF after our
                // one request.
                stream.shutdown(std::net::Shutdown::Write).unwrap();
                let mut response = String::new();
                BufReader::new(&stream).read_line(&mut response).unwrap();
                let (_, result) = wire::decode_response(response.trim_end());
                let SimResponse::Run(body) = result.unwrap() else {
                    panic!("expected run body")
                };
                bodies.push(body);
            }
            assert_eq!(bodies[0], bodies[1], "identical requests, identical bytes");
        });
        let stats = server.service().plan_cache().stats();
        assert!(stats.hits > 0, "second connection reused warm plans");
    }
}
