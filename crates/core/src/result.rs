//! Unified per-layer and per-run results with CSV report emitters
//! (SCALE-Sim's `COMPUTE_REPORT.csv` / `BANDWIDTH_REPORT.csv` /
//! `SPARSE_REPORT.csv` plus the v3 energy report).

use crate::dram::DramAnalysis;
use crate::layout_analysis::LayoutAnalysis;
use scalesim_energy::EnergyReport;
use scalesim_sparse::SparseReportRow;
use scalesim_systolic::{GemmShape, LayerReport};

/// Everything SCALE-Sim v3 produces for one layer.
#[derive(Debug, Clone)]
pub struct LayerResult {
    /// Layer name.
    pub name: String,
    /// The GEMM actually executed (compressed when sparsity is on).
    pub gemm: GemmShape,
    /// The dense GEMM before sparsity compression.
    pub dense_gemm: GemmShape,
    /// Cycle-accurate compute/memory report (ideal-bandwidth memory, or
    /// per representative core under multi-core).
    pub report: LayerReport,
    /// Three-step DRAM analysis (when enabled).
    pub dram: Option<DramAnalysis>,
    /// Layout bank-conflict analysis (when enabled).
    pub layout: Option<LayoutAnalysis>,
    /// Energy report (when enabled).
    pub energy: Option<EnergyReport>,
    /// Sparse storage report row (when sparsity is on).
    pub sparse: Option<SparseReportRow>,
    /// Cores used (1 = single core).
    pub cores: usize,
    /// L2→L1 NoC words (multi-core only).
    pub noc_words: u64,
}

impl LayerResult {
    /// The layer's end-to-end cycles: the DRAM-aware total when available,
    /// otherwise the ideal-memory total.
    pub fn total_cycles(&self) -> u64 {
        self.dram
            .as_ref()
            .map(|d| d.summary.total_cycles)
            .unwrap_or(self.report.memory.total_cycles)
    }

    /// Stall cycles under the selected memory model.
    pub fn stall_cycles(&self) -> u64 {
        self.dram
            .as_ref()
            .map(|d| d.summary.stall_cycles)
            .unwrap_or(self.report.memory.stall_cycles)
    }
}

/// Per-layer CSV row formatters shared by the batch emitters on
/// [`RunResult`] and the streaming [`CsvReportSink`](crate::sink::CsvReportSink).
///
/// Keeping one source of truth for every row format is what makes
/// streamed reports byte-identical to batch reports by construction.
pub mod rows {
    use super::LayerResult;

    /// `COMPUTE_REPORT.csv` header.
    pub const COMPUTE_HEADER: &str =
        "LayerName, ComputeCycles, StallCycles, TotalCycles, Utilization, MappingEfficiency\n";

    /// One `COMPUTE_REPORT.csv` row.
    pub fn compute(l: &LayerResult) -> String {
        format!(
            "{}, {}, {}, {}, {:.4}, {:.4}\n",
            l.name,
            l.report.compute.total_compute_cycles,
            l.stall_cycles(),
            l.total_cycles(),
            l.report.compute.utilization,
            l.report.compute.mapping_efficiency,
        )
    }

    /// `BANDWIDTH_REPORT.csv` header.
    pub const BANDWIDTH_HEADER: &str =
        "LayerName, IfmapReadBW, FilterReadBW, OfmapWriteBW, DramThroughputMBps\n";

    /// One `BANDWIDTH_REPORT.csv` row (average words/cycle per interface
    /// over the layer).
    pub fn bandwidth(l: &LayerResult) -> String {
        let m = &l.report.memory;
        let cycles = l.total_cycles().max(1) as f64;
        format!(
            "{}, {:.4}, {:.4}, {:.4}, {:.1}\n",
            l.name,
            m.ifmap.dram_reads as f64 / cycles,
            m.filter.dram_reads as f64 / cycles,
            m.ofmap.dram_writes as f64 / cycles,
            l.dram.as_ref().map_or(0.0, |d| d.throughput_mbps),
        )
    }

    /// `SPARSE_REPORT.csv` header.
    pub const SPARSE_HEADER: &str =
        "Layer, Sparsity, Representation, OriginalFilterBytes, NewFilterBytes\n";

    /// One `SPARSE_REPORT.csv` row (None for dense layers).
    pub fn sparse(l: &LayerResult) -> Option<String> {
        let s = l.sparse.as_ref()?;
        Some(format!(
            "{}, {}, {}, {}, {}\n",
            s.layer,
            s.sparsity,
            s.representation,
            s.original_bytes,
            s.new_filter_bytes()
        ))
    }

    /// `DRAM_REPORT.csv` header.
    pub const DRAM_HEADER: &str =
        "LayerName, LineRequests, AvgLatency, ThroughputMBps, RowHitRate, \
         DramEnergyPj, DramPjPerBit, DramAvgPowerMw\n";

    /// One `DRAM_REPORT.csv` row (None when the DRAM flow was off).
    pub fn dram(l: &LayerResult) -> Option<String> {
        let d = l.dram.as_ref()?;
        Some(format!(
            "{}, {}, {:.2}, {:.1}, {:.4}, {:.1}, {:.3}, {:.2}\n",
            l.name,
            d.line_requests,
            d.avg_latency,
            d.throughput_mbps,
            d.stats.row_hit_rate(),
            d.energy.total_pj(),
            d.energy.pj_per_bit(),
            d.energy.avg_power_mw(),
        ))
    }

    /// `ENERGY_REPORT.csv` header.
    pub const ENERGY_HEADER: &str = "LayerName, EnergyMj, AvgPowerW, EdpCyclesMj\n";

    /// One `ENERGY_REPORT.csv` row (None when energy was off).
    pub fn energy(l: &LayerResult) -> Option<String> {
        let e = l.energy.as_ref()?;
        Some(format!(
            "{}, {:.6}, {:.4}, {:.4}\n",
            l.name,
            e.total_mj(),
            e.avg_power_w(),
            e.edp_cycles_mj()
        ))
    }
}

/// A full-network run.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Per-layer results in execution order.
    pub layers: Vec<LayerResult>,
}

impl RunResult {
    /// Sum of per-layer end-to-end cycles.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.total_cycles()).sum()
    }

    /// Sum of compute cycles (no stalls).
    pub fn total_compute_cycles(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.report.compute.total_compute_cycles)
            .sum()
    }

    /// Sum of stall cycles.
    pub fn total_stall_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.stall_cycles()).sum()
    }

    /// Total energy in mJ (0.0 when energy is disabled).
    pub fn total_energy_mj(&self) -> f64 {
        self.layers
            .iter()
            .filter_map(|l| l.energy.as_ref().map(|e| e.total_mj()))
            .sum()
    }

    /// Energy-delay product in `cycles × mJ` (Table V's unit), computed
    /// over the whole run.
    pub fn edp_cycles_mj(&self) -> f64 {
        self.total_cycles() as f64 * self.total_energy_mj()
    }

    /// MACs executed.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.report.compute.macs).sum()
    }

    /// The `COMPUTE_REPORT.csv` equivalent.
    pub fn compute_report_csv(&self) -> String {
        let mut out = String::from(rows::COMPUTE_HEADER);
        for l in &self.layers {
            out.push_str(&rows::compute(l));
        }
        out
    }

    /// The `BANDWIDTH_REPORT.csv` equivalent (average words/cycle per
    /// interface over each layer).
    pub fn bandwidth_report_csv(&self) -> String {
        let mut out = String::from(rows::BANDWIDTH_HEADER);
        for l in &self.layers {
            out.push_str(&rows::bandwidth(l));
        }
        out
    }

    /// The `SPARSE_REPORT.csv` equivalent (empty string when dense).
    pub fn sparse_report_csv(&self) -> String {
        if self.layers.iter().all(|l| l.sparse.is_none()) {
            return String::new();
        }
        let mut out = String::from(rows::SPARSE_HEADER);
        for l in &self.layers {
            if let Some(row) = rows::sparse(l) {
                out.push_str(&row);
            }
        }
        out
    }

    /// Total DRAM energy over the run in mJ (0.0 when DRAM is disabled).
    pub fn total_dram_energy_mj(&self) -> f64 {
        self.layers
            .iter()
            .filter_map(|l| l.dram.as_ref().map(|d| d.energy.total_mj()))
            .sum()
    }

    /// Per-layer DRAM CSV — replay statistics plus the IDD power model
    /// (empty when the DRAM flow is disabled).
    pub fn dram_report_csv(&self) -> String {
        if self.layers.iter().all(|l| l.dram.is_none()) {
            return String::new();
        }
        let mut out = String::from(rows::DRAM_HEADER);
        for l in &self.layers {
            if let Some(row) = rows::dram(l) {
                out.push_str(&row);
            }
        }
        out
    }

    /// Per-layer energy CSV (empty when energy is disabled).
    pub fn energy_report_csv(&self) -> String {
        if self.layers.iter().all(|l| l.energy.is_none()) {
            return String::new();
        }
        let mut out = String::from(rows::ENERGY_HEADER);
        for l in &self.layers {
            if let Some(row) = rows::energy(l) {
                out.push_str(&row);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_systolic::{ComputeSummary, MemorySummary, SramSummary};

    fn layer(name: &str, cycles: u64) -> LayerResult {
        let gemm = GemmShape::new(4, 4, 4);
        LayerResult {
            name: name.into(),
            gemm,
            dense_gemm: gemm,
            report: LayerReport {
                name: name.into(),
                gemm,
                compute: ComputeSummary {
                    total_compute_cycles: cycles,
                    folds: 1,
                    macs: 64,
                    utilization: 0.5,
                    mapping_efficiency: 0.5,
                },
                memory: MemorySummary {
                    total_cycles: cycles + 10,
                    stall_cycles: 10,
                    compute_cycles: cycles,
                    ..Default::default()
                },
                sram: SramSummary::default(),
            },
            dram: None,
            layout: None,
            energy: None,
            sparse: None,
            cores: 1,
            noc_words: 0,
        }
    }

    #[test]
    fn totals_sum_over_layers() {
        let run = RunResult {
            layers: vec![layer("a", 100), layer("b", 200)],
        };
        assert_eq!(run.total_cycles(), 100 + 10 + 200 + 10);
        assert_eq!(run.total_compute_cycles(), 300);
        assert_eq!(run.total_stall_cycles(), 20);
        assert_eq!(run.total_macs(), 128);
        assert_eq!(run.total_energy_mj(), 0.0);
    }

    #[test]
    fn csv_reports_have_rows_per_layer() {
        let run = RunResult {
            layers: vec![layer("a", 100), layer("b", 200)],
        };
        assert_eq!(run.compute_report_csv().lines().count(), 3);
        assert_eq!(run.bandwidth_report_csv().lines().count(), 3);
        assert!(run.sparse_report_csv().is_empty());
        assert!(run.energy_report_csv().is_empty());
    }
}
