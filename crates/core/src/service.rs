//! The request/response facade: [`SimService`] executes typed
//! [`SimRequest`]s from the `scalesim-api` crate.
//!
//! This is the **single choke point** for every scenario the simulator
//! supports: the CLI binary, the persistent `scalesim serve` mode and
//! embedding tools all build a [`SimRequest`] and go through here, so
//! input loading, validation and the [`SimError`] taxonomy behave
//! identically everywhere. Nothing on this path panics on user input —
//! every failure surfaces as a typed error.
//!
//! The service owns one [`PlanCache`] shared by **all** requests it
//! handles: a persistent server re-planning nothing for repeated
//! workloads is the point of serve mode. Requests are otherwise
//! isolated — each builds its own engine from its own configuration —
//! and report bytes never depend on the cache's contents (only planning
//! time does), so serve-mode responses are byte-identical to one-shot
//! CLI runs.
//!
//! ```
//! use scalesim::service::SimService;
//! use scalesim::api::{Features, RunSpec, SimRequest, SimResponse, TopologySource};
//!
//! let service = SimService::new();
//! let request = SimRequest::Run(RunSpec {
//!     config: Default::default(),
//!     topology: TopologySource::inline("demo", "l0, 32, 32, 32,\n"),
//!     features: Features { energy: true, ..Default::default() },
//! });
//! let SimResponse::Run(body) = service.handle(&request).unwrap() else {
//!     panic!("run request answers with a run body")
//! };
//! assert!(body.summary.total_cycles > 0);
//! assert!(body.reports.iter().any(|r| r.name == "ENERGY_REPORT.csv"));
//! ```

use crate::cancel::CancelToken;
use crate::cfg::parse_cfg;
use crate::config::{MultiCoreIntegration, ScaleSimConfig};
use crate::engine::{ScaleSim, StreamStats};
use crate::metrics::ServeMetrics;
use crate::scaleout::{run_scaleout, MemoryScaleoutSink, ScaleoutSink, ScaleoutSummary};
use crate::sink::{MemoryReportSink, ReportSections, ResultSink, RunSummary};
use crate::sweep_run::run_sweep_cached;
use scalesim_api::{
    AreaBody, AreaSpec, ConfigSource, Features, LlmBody, LlmRequest, Report, RunBody, RunSpec,
    RunSummaryBody, ScaleoutBody, ScaleoutRequest, SimError, SimRequest, SimResponse, StatsBody,
    SweepBody, SweepRequest, TopologyFormat, TopologySource, TraceBody, VersionBody, API_VERSION,
};
use scalesim_collective::{FabricTag, ScaleoutSpec, Strategy};
use scalesim_energy::AreaBreakdown;
use scalesim_llm::{LlmRunSpec, LlmSpec, Phase};
use scalesim_multicore::{L2Config, PartitionGrid, PartitionScheme};
use scalesim_sweep::{SweepReport, SweepSpec};
use scalesim_systolic::{PlanCache, PlanCacheStats, Topology};
use std::path::Path;
use std::sync::Arc;

/// Plan-cache capacity of a fresh service: large enough that a serve
/// process cycling through many workloads and grids rarely evicts
/// (plans are small; capacity bounds memory, never results).
pub const SERVICE_CACHE_CAPACITY: usize = 4096;

/// Builds the shared plan cache a fresh service uses. With
/// `SCALESIM_CACHE_BUDGET_MB` set to a positive integer, the cache is
/// bounded by resident plan *bytes* with cost-aware eviction
/// ([`PlanCache::with_budget`]); otherwise it is count-capped at
/// [`SERVICE_CACHE_CAPACITY`]. Cache shape never changes results —
/// only planning time.
fn cache_from_env() -> Arc<PlanCache> {
    match std::env::var("SCALESIM_CACHE_BUDGET_MB")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&mb| mb > 0)
    {
        Some(mb) => Arc::new(PlanCache::with_budget(mb.saturating_mul(1024 * 1024))),
        None => Arc::new(PlanCache::with_capacity(SERVICE_CACHE_CAPACITY)),
    }
}

/// Executes [`SimRequest`]s against a persistent shared [`PlanCache`],
/// answering `stats` requests from shared [`ServeMetrics`] (recorded by
/// the serve loop; a one-shot CLI service reports all-zero counters).
#[derive(Debug, Clone)]
pub struct SimService {
    cache: Arc<PlanCache>,
    metrics: Arc<ServeMetrics>,
}

impl Default for SimService {
    fn default() -> Self {
        Self::new()
    }
}

impl SimService {
    /// A service with a fresh plan cache: byte-budgeted when
    /// `SCALESIM_CACHE_BUDGET_MB` is set, else count-capped at
    /// [`SERVICE_CACHE_CAPACITY`].
    pub fn new() -> Self {
        Self {
            cache: cache_from_env(),
            metrics: Arc::new(ServeMetrics::new()),
        }
    }

    /// A service sharing an existing plan cache (metrics start fresh).
    pub fn with_plan_cache(cache: Arc<PlanCache>) -> Self {
        Self {
            cache,
            metrics: Arc::new(ServeMetrics::new()),
        }
    }

    /// The plan cache every request handled by this service shares.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The serving metrics `stats` requests report. Clones of this
    /// service (e.g. one per worker thread) share the same counters.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Executes one request, producing the matching response variant.
    ///
    /// # Errors
    ///
    /// Every failure is a categorized [`SimError`]; no input can panic
    /// this path (the serve loop additionally catches panics as a last
    /// line of defense and reports them as `internal`).
    pub fn handle(&self, request: &SimRequest) -> Result<SimResponse, SimError> {
        self.handle_cancellable(request, None)
    }

    /// Executes one request under an optional deadline token.
    ///
    /// Cancellation is cooperative and checked at stage boundaries:
    /// a `run` checks between every pipeline stage of every layer; a
    /// `sweep` or `scaleout` checks between its phases (load/validate,
    /// execute, package) but not inside the grid or collective
    /// execution, so those overshoot by at most one phase. An expired
    /// token never yields a partial body — the request answers the
    /// typed `deadline` error and nothing else.
    ///
    /// # Errors
    ///
    /// As [`handle`](Self::handle), plus `Deadline` when `cancel`
    /// expires before the response is assembled.
    pub fn handle_cancellable(
        &self,
        request: &SimRequest,
        cancel: Option<&CancelToken>,
    ) -> Result<SimResponse, SimError> {
        check_cancel(cancel)?;
        match request {
            SimRequest::Run(spec) => {
                let prepared = self.prepare_run(spec)?;
                Ok(SimResponse::Run(prepared.into_body_cancellable(cancel)?))
            }
            SimRequest::Sweep(spec) => {
                let prepared = self.prepare_sweep(spec)?;
                check_cancel(cancel)?;
                let (report, _) = prepared.run_with(|_| {})?;
                check_cancel(cancel)?;
                Ok(SimResponse::Sweep(sweep_body(&prepared, &report)))
            }
            SimRequest::Scaleout(spec) => {
                let prepared = self.prepare_scaleout(spec)?;
                check_cancel(cancel)?;
                let body = prepared.into_body()?;
                check_cancel(cancel)?;
                Ok(SimResponse::Scaleout(body))
            }
            SimRequest::Llm(spec) => {
                let prepared = self.prepare_llm(spec)?;
                Ok(SimResponse::Llm(prepared.into_body_cancellable(cancel)?))
            }
            SimRequest::AreaReport(spec) => Ok(SimResponse::Area(self.area(spec)?)),
            SimRequest::Version => Ok(SimResponse::Version(version_body())),
            SimRequest::Stats => Ok(SimResponse::Stats(self.stats_body())),
            SimRequest::Trace => Ok(SimResponse::Trace(trace_body())),
        }
    }

    /// Snapshots the service's cache and serving counters as a `stats`
    /// response body. Counter reads are relaxed atomics — a snapshot
    /// taken mid-burst is approximate, never torn.
    pub fn stats_body(&self) -> StatsBody {
        let cache = self.cache.stats();
        let lookups = cache.hits + cache.misses;
        let m = &*self.metrics;
        let sched = scalesim_sched::Scheduler::global().stats();
        StatsBody {
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_plans: cache.plans as u64,
            cache_evictions: cache.evictions,
            cache_resident_bytes: cache.resident_bytes as u64,
            cache_budget_bytes: self.cache.budget_bytes().unwrap_or(0) as u64,
            cache_hit_rate: if lookups > 0 {
                cache.hits as f64 / lookups as f64
            } else {
                0.0
            },
            requests_total: m.get(&m.requests_total),
            completed: m.get(&m.completed),
            shed: m.get(&m.shed),
            deadline_expired: m.get(&m.deadline_expired),
            in_flight: m.get(&m.in_flight),
            latency_count: m.latency.count(),
            latency_p50_us: m.latency.percentile_us(50.0),
            latency_p99_us: m.latency.percentile_us(99.0),
            latency_max_us: m.latency.max_us(),
            sched_workers: sched.workers as u64,
            sched_steals: sched.steals,
            sched_spawns: sched.spawns,
            sched_park_wakeups: sched.park_wakeups,
            span_totals: scalesim_obs::category_totals(),
        }
    }

    /// Renders this service's metrics as Prometheus text exposition
    /// (format 0.0.4): serve counters, the handle-latency histogram,
    /// plan-cache counters, scheduler accounting and per-category span
    /// totals. The `scalesim serve --metrics-addr` HTTP endpoint serves
    /// exactly this body; names and semantics are documented in
    /// `docs/OBSERVABILITY.md`.
    pub fn render_prometheus(&self) -> String {
        use scalesim_obs::{render_counter, render_gauge, render_histogram};
        let mut out = String::new();
        let m = &*self.metrics;
        render_counter(
            &mut out,
            "scalesim_requests_total",
            "Requests received (queued or answered inline, including shed).",
            m.get(&m.requests_total),
        );
        render_counter(
            &mut out,
            "scalesim_requests_completed_total",
            "Requests fully handled (ok or typed error written).",
            m.get(&m.completed),
        );
        render_counter(
            &mut out,
            "scalesim_requests_shed_total",
            "Requests shed with busy (queue full or session cap).",
            m.get(&m.shed),
        );
        render_counter(
            &mut out,
            "scalesim_deadline_expired_total",
            "Requests that returned a deadline error.",
            m.get(&m.deadline_expired),
        );
        render_gauge(
            &mut out,
            "scalesim_requests_in_flight",
            "Requests currently queued or executing.",
            m.get(&m.in_flight) as i64,
        );
        render_histogram(
            &mut out,
            "scalesim_handle_latency_us",
            "Request handle latency (decode to encode), microseconds.",
            &m.latency,
        );
        let cache = self.cache.stats();
        render_counter(
            &mut out,
            "scalesim_plan_cache_hits_total",
            "Plan-cache lookups answered from the cache.",
            cache.hits,
        );
        render_counter(
            &mut out,
            "scalesim_plan_cache_misses_total",
            "Plan-cache lookups that planned fresh.",
            cache.misses,
        );
        render_counter(
            &mut out,
            "scalesim_plan_cache_evictions_total",
            "Plans evicted to stay within the cache bound.",
            cache.evictions,
        );
        render_gauge(
            &mut out,
            "scalesim_plan_cache_resident_bytes",
            "Bytes held by resident plans.",
            cache.resident_bytes as i64,
        );
        let sched = scalesim_sched::Scheduler::global().stats();
        render_gauge(
            &mut out,
            "scalesim_sched_workers",
            "Worker threads in the global scheduler pool.",
            sched.workers as i64,
        );
        render_counter(
            &mut out,
            "scalesim_sched_steals_total",
            "Tasks stolen from a sibling worker's queue.",
            sched.steals,
        );
        render_counter(
            &mut out,
            "scalesim_sched_spawns_total",
            "Detached tasks spawned onto the pool.",
            sched.spawns,
        );
        render_counter(
            &mut out,
            "scalesim_sched_park_wakeups_total",
            "Times an idle worker woke from park.",
            sched.park_wakeups,
        );
        out.push_str("# HELP scalesim_spans_total Span/instant events recorded per category.\n");
        out.push_str("# TYPE scalesim_spans_total counter\n");
        let totals = scalesim_obs::category_totals();
        for (category, total) in scalesim_api::SPAN_CATEGORIES.iter().zip(totals) {
            use std::fmt::Write;
            let _ = writeln!(
                out,
                "scalesim_spans_total{{category=\"{category}\"}} {total}"
            );
        }
        out
    }

    /// Loads and validates everything a run request needs, returning
    /// the ready-to-execute pair. The CLI uses this directly so it can
    /// stream results into its own sinks (progress lines, incremental
    /// CSV files); [`handle`](Self::handle) collects into a
    /// [`RunBody`].
    ///
    /// # Errors
    ///
    /// `Io` for unreadable inputs, `Config` for bad configurations,
    /// `Topology` for bad workloads.
    pub fn prepare_run(&self, spec: &RunSpec) -> Result<PreparedRun, SimError> {
        let config = load_config(&spec.config, &spec.features)?;
        let topology = load_topology(&spec.topology)?;
        let sim = ScaleSim::try_new_with_cache(config, Arc::clone(&self.cache))?;
        Ok(PreparedRun { sim, topology })
    }

    /// Resolves an llm request into a ready-to-execute run: the model
    /// spec comes from the configuration's `[llm]` section and/or the
    /// `workload` preset name, with the request's phase/seq/batch/
    /// context overrides applied on top, then expands into its GEMM
    /// topology. The CLI drives the prepared run itself for progress
    /// streaming; [`handle`](Self::handle) collects an
    /// [`scalesim_api::LlmBody`].
    ///
    /// # Errors
    ///
    /// `Config` for unknown presets/phases, inconsistent model
    /// dimensions, or a request that names no model at all.
    pub fn prepare_llm(&self, request: &LlmRequest) -> Result<PreparedLlm, SimError> {
        let config = load_config(&request.config, &request.features)?;
        let mut llm = match (config.llm.clone(), &request.workload) {
            (Some(run), None) => run,
            (base, Some(name)) => {
                let spec = LlmSpec::preset(name).ok_or_else(|| {
                    SimError::Config(format!(
                        "unknown llm workload '{name}' (presets: {})",
                        LlmSpec::preset_names().join(", ")
                    ))
                })?;
                let mut run = base.unwrap_or_default();
                run.spec = spec;
                run
            }
            (None, None) => {
                return Err(SimError::Config(
                    "llm: no model named — pass a preset (--workload / \"workload\") \
                     or an [llm] cfg section"
                        .into(),
                ))
            }
        };
        if let Some(phase) = &request.phase {
            llm.phase = Phase::parse(phase).map_err(SimError::Config)?;
        }
        if let Some(seq) = request.seq {
            llm.spec.seq = seq;
        }
        if let Some(batch) = request.batch {
            llm.spec.batch = batch;
        }
        if let Some(context) = request.context {
            llm.context = Some(context);
        }
        let topology = llm.topology().map_err(SimError::Config)?;
        let sim = ScaleSim::try_new_with_cache(config, Arc::clone(&self.cache))?;
        Ok(PreparedLlm {
            run: PreparedRun { sim, topology },
            llm,
        })
    }

    /// Loads and validates everything a sweep request needs. As with
    /// [`prepare_run`](Self::prepare_run), the CLI drives the prepared
    /// sweep itself for progress streaming.
    ///
    /// # Errors
    ///
    /// `Io` for unreadable inputs, `Config` for bad specs or
    /// configurations, `Topology` for bad workloads.
    pub fn prepare_sweep(&self, request: &SweepRequest) -> Result<PreparedSweep, SimError> {
        let (text, spec_dir) = match &request.spec {
            ConfigSource::Default => {
                return Err(SimError::Config(
                    "a sweep needs a grid spec (inline or path)".into(),
                ))
            }
            ConfigSource::Inline(text) => (text.clone(), None),
            ConfigSource::Path(path) => (
                read_input(Path::new(path))?,
                Path::new(path).parent().map(Path::to_path_buf),
            ),
        };
        let mut spec = SweepSpec::parse(&text).map_err(|e| SimError::Config(e.to_string()))?;
        let base = load_config(&request.base_config, &Features::default())?;

        // Topology paths from the spec resolve against the spec's own
        // directory first (so a spec can sit next to its topologies and
        // a same-named file in the CWD cannot shadow them), then fall
        // back to the CWD. Request topologies resolve as given.
        let spec_dir = spec_dir.unwrap_or_else(|| Path::new(".").to_path_buf());
        let mut topologies = Vec::new();
        for rel in spec.topologies.drain(..) {
            let p = Path::new(&rel);
            let spec_relative = spec_dir.join(p);
            let path = if !p.is_absolute() && spec_relative.exists() {
                spec_relative
            } else {
                p.to_path_buf()
            };
            topologies.push(load_topology(&TopologySource::from_path(
                path.display().to_string(),
            ))?);
        }
        for source in &request.topologies {
            topologies.push(load_topology(source)?);
        }
        // An [llm] model in the base config IS the sweep's workload: the
        // seq/batch/phase axes reshape its GEMMs per point, so a fixed
        // topology list cannot coexist with it.
        if let Some(llm) = &base.llm {
            if !topologies.is_empty() {
                return Err(SimError::Config(
                    "sweep: an [llm] model and explicit topologies are mutually \
                     exclusive (the llm model is the workload)"
                        .into(),
                ));
            }
            topologies.push(llm.topology().map_err(SimError::Config)?);
        }
        if topologies.is_empty() {
            return Err(SimError::Config(
                "sweep has no topologies (add a [workloads] section or -t)".into(),
            ));
        }
        // A grid whose worst-case plan count exceeds the shared cache's
        // capacity gets its own right-sized cache instead: the shared
        // cache evicts by clearing wholesale, so an oversized sweep
        // would thrash itself *and* wipe every other request's warm
        // plans. Small sweeps keep sharing (and warming) the service
        // cache. Either way results are identical — only planning time
        // differs.
        let distinct_shapes: usize = topologies.iter().map(|t| t.len()).sum::<usize>().max(1);
        let worst_case_plans = spec.grid_size().saturating_mul(distinct_shapes);
        let cache = if worst_case_plans > SERVICE_CACHE_CAPACITY {
            Arc::new(PlanCache::with_capacity(worst_case_plans))
        } else {
            Arc::clone(&self.cache)
        };
        Ok(PreparedSweep {
            spec,
            base,
            topologies,
            shards: request.shards.max(1),
            cache,
        })
    }

    /// Loads and validates everything a scale-out request needs: the
    /// per-chip architecture (whose `[scaleout]` section seeds the
    /// scale-out parameters), the workload, and the request's
    /// overrides. The CLI drives the prepared run itself so it can
    /// stream `SCALEOUT_REPORT.csv` rows to disk.
    ///
    /// # Errors
    ///
    /// `Io` for unreadable inputs, `Config` for bad configurations or
    /// inconsistent scale-out parameters, `Topology` for bad workloads.
    pub fn prepare_scaleout(
        &self,
        request: &ScaleoutRequest,
    ) -> Result<PreparedScaleout, SimError> {
        let config = load_config(&request.config, &request.features)?;
        let topology = load_topology(&request.topology)?;
        let mut spec = config.scaleout.clone().unwrap_or_default();
        if let Some(chips) = request.chips {
            spec.chips = chips;
            // An explicit chip count invalidates cfg-pinned mesh dims;
            // fall back to the near-square factorization.
            spec.mesh = None;
        }
        if let Some(fabric) = &request.fabric {
            spec.fabric = FabricTag::parse(fabric).map_err(SimError::Config)?;
        }
        if let Some(gbps) = request.link_gbps {
            spec.link_gbps = gbps;
        }
        if let Some(latency) = request.link_latency {
            spec.link_latency = latency;
        }
        if let Some(strategy) = &request.strategy {
            spec.strategy = Strategy::parse(strategy).map_err(SimError::Config)?;
        }
        if let Some(microbatches) = request.microbatches {
            spec.microbatches = microbatches;
        }
        // Fail on inconsistent fabrics before any simulation.
        spec.fabric().map_err(SimError::Config)?;
        let sim = ScaleSim::try_new_with_cache(config, Arc::clone(&self.cache))?;
        Ok(PreparedScaleout {
            sim,
            topology,
            spec,
        })
    }

    /// Estimates the configured accelerator's silicon area.
    ///
    /// # Errors
    ///
    /// `Io` for unreadable inputs, `Config` for bad configurations.
    pub fn area(&self, spec: &AreaSpec) -> Result<AreaBody, SimError> {
        let config = load_config(&spec.config, &spec.features)?;
        let sim = ScaleSim::try_new_with_cache(config, Arc::clone(&self.cache))?;
        Ok(area_body(&sim.area_report()))
    }
}

/// Errors with the token's typed `deadline` error if it has expired.
fn check_cancel(cancel: Option<&CancelToken>) -> Result<(), SimError> {
    match cancel {
        Some(token) if token.expired() => Err(token.to_error()),
        _ => Ok(()),
    }
}

/// A validated run, ready to execute: the engine (sharing the service's
/// plan cache) and the parsed workload.
#[derive(Debug, Clone)]
pub struct PreparedRun {
    /// The configured engine.
    pub sim: ScaleSim,
    /// The parsed workload.
    pub topology: Topology,
}

impl PreparedRun {
    /// Streams the run into `sink` with bounded result memory (see
    /// [`ScaleSim::run_topology_with`]).
    pub fn run_into(&self, sink: &mut dyn ResultSink) -> StreamStats {
        self.sim.run_topology_with(&self.topology, sink)
    }

    /// Executes the run, collecting the response body: the O(1) summary
    /// plus every report the configuration produces, byte-identical to
    /// the files the CLI writes.
    pub fn into_body(self) -> RunBody {
        self.into_body_cancellable(None)
            .expect("no cancel token, so the run always completes")
    }

    /// As [`into_body`](Self::into_body), but abandons the run at the
    /// next pipeline-stage boundary once `cancel` expires. The body is
    /// identical to the uncancelled one whenever the token survives —
    /// the token costs checks, never results.
    ///
    /// # Errors
    ///
    /// `Deadline` when the token expires mid-run; partial results are
    /// discarded (a deadline response never carries a body).
    pub fn into_body_cancellable(self, cancel: Option<&CancelToken>) -> Result<RunBody, SimError> {
        let mut csv = MemoryReportSink::new(ReportSections::for_config(self.sim.config()));
        let mut summary = RunSummary::new();
        struct Tee<'a> {
            csv: &'a mut MemoryReportSink,
            summary: &'a mut RunSummary,
        }
        impl ResultSink for Tee<'_> {
            fn layer(&mut self, result: crate::result::LayerResult) {
                self.summary.add(&result);
                self.csv.layer(result);
            }
        }
        let mut tee = Tee {
            csv: &mut csv,
            summary: &mut summary,
        };
        match cancel {
            Some(token) => {
                self.sim
                    .run_topology_cancellable(&self.topology, &mut tee, token)?;
            }
            None => {
                self.sim.run_topology_with(&self.topology, &mut tee);
            }
        }
        Ok(RunBody {
            summary: summary_body(&summary),
            reports: csv
                .finish()
                .into_iter()
                .map(|(name, content)| Report {
                    name: name.to_string(),
                    content,
                })
                .collect(),
        })
    }
}

/// A validated llm run, ready to execute: the engine plus the
/// generated per-block GEMM topology, alongside the resolved model
/// spec (cfg section and/or preset, with request overrides applied).
#[derive(Debug, Clone)]
pub struct PreparedLlm {
    /// The underlying run (engine + generated topology).
    pub run: PreparedRun,
    /// The resolved model spec, phase, and context.
    pub llm: LlmRunSpec,
}

impl PreparedLlm {
    /// Executes the run, collecting the response body: model identity
    /// and analytical figures (parameter count, KV-cache footprint at
    /// the effective context) wrapped around the same summary and
    /// reports a plain run yields, byte-identical to the CLI's files.
    pub fn into_body(self) -> LlmBody {
        self.into_body_cancellable(None)
            .expect("no cancel token, so the run always completes")
    }

    /// As [`into_body`](Self::into_body), but abandons the run at the
    /// next pipeline-stage boundary once `cancel` expires.
    ///
    /// # Errors
    ///
    /// `Deadline` when the token expires mid-run.
    pub fn into_body_cancellable(self, cancel: Option<&CancelToken>) -> Result<LlmBody, SimError> {
        let context = self.llm.effective_context();
        let body = self.run.into_body_cancellable(cancel)?;
        Ok(LlmBody {
            workload: self.llm.spec.name.clone(),
            phase: self.llm.phase.tag().to_string(),
            context: context as u64,
            params: self.llm.spec.param_count(),
            kv_cache_bytes: self.llm.spec.kv_cache_bytes(context),
            summary: body.summary,
            reports: body.reports,
        })
    }
}

/// A validated scale-out run, ready to execute: the per-chip engine
/// (sharing the service's plan cache), the workload, and the resolved
/// scale-out parameters.
#[derive(Debug, Clone)]
pub struct PreparedScaleout {
    /// The configured per-chip engine.
    pub sim: ScaleSim,
    /// The parsed workload.
    pub topology: Topology,
    /// The resolved scale-out parameters (cfg section plus request
    /// overrides).
    pub spec: ScaleoutSpec,
}

impl PreparedScaleout {
    /// Streams the run's per-layer records into `sink`, returning the
    /// run-level summary.
    ///
    /// # Errors
    ///
    /// `Config` when the scale-out parameters are inconsistent
    /// (normally caught at prepare time).
    pub fn run_into(&self, sink: &mut dyn ScaleoutSink) -> Result<ScaleoutSummary, SimError> {
        run_scaleout(&self.sim, &self.topology, &self.spec, sink).map_err(SimError::Config)
    }

    /// Executes the run, collecting the response body: the summary plus
    /// a `SCALEOUT_REPORT.csv` byte-identical to the file the CLI
    /// writes.
    ///
    /// # Errors
    ///
    /// `Config` when the scale-out parameters are inconsistent.
    pub fn into_body(self) -> Result<ScaleoutBody, SimError> {
        let mut csv = MemoryScaleoutSink::new();
        let summary = self.run_into(&mut csv)?;
        Ok(scaleout_body(&summary, csv.finish()))
    }
}

/// Packages a finished scale-out run as the response body.
pub fn scaleout_body(summary: &ScaleoutSummary, report_csv: String) -> ScaleoutBody {
    ScaleoutBody {
        chips: summary.chips as u64,
        strategy: summary.strategy.tag().to_string(),
        fabric: summary.fabric.clone(),
        layers: summary.layers,
        total_cycles: summary.total_cycles,
        compute_cycles: summary.compute_cycles,
        comm_cycles: summary.comm_cycles,
        overlapped_cycles: summary.overlapped_cycles,
        exposed_cycles: summary.exposed_cycles,
        bubble_cycles: summary.bubble_cycles,
        utilization: summary.utilization(),
        reports: vec![Report {
            name: "SCALEOUT_REPORT.csv".into(),
            content: report_csv,
        }],
    }
}

/// A validated sweep, ready to execute against the service's shared
/// plan cache.
#[derive(Debug, Clone)]
pub struct PreparedSweep {
    /// The parsed grid spec (topology paths already resolved out).
    pub spec: SweepSpec,
    /// The base configuration the grid overrides.
    pub base: ScaleSimConfig,
    /// The parsed workloads.
    pub topologies: Vec<Topology>,
    /// Executor shard count.
    pub shards: usize,
    cache: Arc<PlanCache>,
}

impl PreparedSweep {
    /// Executes the sweep; `on_record` observes every run record as its
    /// shard completes (see [`crate::sweep_run::run_sweep_with`]).
    ///
    /// # Errors
    ///
    /// `Config` naming the offending grid point when any expanded
    /// configuration fails validation.
    pub fn run_with(
        &self,
        on_record: impl FnMut(&scalesim_sweep::RunRecord),
    ) -> Result<(SweepReport, PlanCacheStats), SimError> {
        run_sweep_cached(
            &self.spec,
            &self.base,
            &self.topologies,
            self.shards,
            &self.cache,
            on_record,
        )
        .map_err(SimError::Config)
    }
}

/// Reduces a streamed [`RunSummary`] into the response summary.
pub fn summary_body(summary: &RunSummary) -> RunSummaryBody {
    RunSummaryBody {
        layers: summary.layers,
        total_cycles: summary.total_cycles,
        compute_cycles: summary.compute_cycles,
        stall_cycles: summary.stall_cycles,
        macs: summary.macs,
        utilization: summary.utilization(),
        energy_mj: summary.energy_mj(),
        noc_words: summary.noc_words,
    }
}

/// Packages an area estimate as the response body (the CSV matches the
/// `AREA_REPORT.csv` the CLI writes).
pub fn area_body(area: &AreaBreakdown) -> AreaBody {
    AreaBody {
        total_mm2: area.total_mm2(),
        pe_array_mm2: area.pe_array_mm2,
        sram_mm2: area.sram_mm2(),
        noc_mm2: area.noc_mm2,
        dram_ctrl_mm2: area.dram_ctrl_mm2,
        reports: vec![Report {
            name: "AREA_REPORT.csv".into(),
            content: format!("{}\n{}\n", AreaBreakdown::csv_header(), area.to_csv_row()),
        }],
    }
}

/// Packages a finished sweep as the response body.
pub fn sweep_body(prepared: &PreparedSweep, report: &SweepReport) -> SweepBody {
    SweepBody {
        grid_points: prepared.spec.grid_size(),
        runs: report.records().len(),
        pareto_frontier: report
            .pareto_labels()
            .into_iter()
            .map(str::to_string)
            .collect(),
        reports: vec![
            Report {
                name: "SWEEP_REPORT.csv".into(),
                content: report.to_csv(),
            },
            Report {
                name: "SWEEP_REPORT.json".into(),
                content: report.to_json(),
            },
        ],
    }
}

/// The version response body.
pub fn version_body() -> VersionBody {
    VersionBody {
        version: crate::cli::version_string(),
        api: API_VERSION,
    }
}

/// Snapshots the process's recorded span rings as a `trace` response
/// body. The trace string is empty-but-valid Chrome JSON when tracing
/// was never enabled; `events` counts span/instant records across all
/// categories since process start.
pub fn trace_body() -> TraceBody {
    TraceBody {
        enabled: scalesim_obs::tracing_enabled(),
        events: scalesim_obs::recorded_events(),
        trace: scalesim_obs::chrome_trace_string(),
    }
}

fn read_input(path: &Path) -> Result<String, SimError> {
    std::fs::read_to_string(path)
        .map_err(|e| SimError::Io(format!("cannot read {}: {e}", path.display())))
}

/// Loads a configuration source and applies the request's feature
/// toggles.
pub fn load_config(source: &ConfigSource, features: &Features) -> Result<ScaleSimConfig, SimError> {
    let mut config = match source {
        ConfigSource::Default => ScaleSimConfig::default(),
        ConfigSource::Inline(text) => parse_cfg(text)?,
        ConfigSource::Path(path) => parse_cfg(&read_input(Path::new(path))?)?,
    };
    config.enable_dram = features.dram;
    config.enable_energy = features.energy;
    config.enable_layout = features.layout;
    if let Some(cores) = &features.cores {
        let grid = PartitionGrid::parse(cores).ok_or_else(|| {
            SimError::Config(format!("bad cores '{cores}' (expected RxC, e.g. 2x2)"))
        })?;
        config.multicore = if grid.cores() == 1 {
            None
        } else {
            Some(MultiCoreIntegration {
                grid,
                scheme: PartitionScheme::Spatial,
                l2: Some(L2Config::default()),
            })
        };
    }
    Ok(config)
}

/// Loads and parses a topology source. Registry workloads (CNN/ViT
/// names and llm presets, optionally `:prefill`/`:decode`-suffixed)
/// resolve through [`scalesim_workloads::by_name_or_err`], whose error
/// spells out the full supported vocabulary.
pub fn load_topology(source: &TopologySource) -> Result<Topology, SimError> {
    if let Some(workload) = &source.workload {
        return scalesim_workloads::by_name_or_err(workload).map_err(SimError::Topology);
    }
    let (csv, default_name) = match (&source.inline, &source.path) {
        (Some(text), _) => (text.clone(), "workload".to_string()),
        (None, Some(path)) => {
            let p = Path::new(path);
            let stem = p
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_else(|| "workload".into());
            (read_input(p)?, stem)
        }
        (None, None) => {
            return Err(SimError::Config(
                "request: topology has neither \"path\" nor \"inline\"".into(),
            ))
        }
    };
    let name = source.name.clone().unwrap_or(default_name);
    let topo = match source.format {
        TopologyFormat::Auto => Topology::parse_csv_auto(&name, &csv),
        TopologyFormat::Conv => Topology::parse_conv_csv(&name, &csv),
        TopologyFormat::Gemm => Topology::parse_gemm_csv(&name, &csv),
    }?;
    if topo.is_empty() {
        return Err(SimError::Topology(format!(
            "topology '{name}' has no layers"
        )));
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_topology() -> TopologySource {
        TopologySource::inline("t", "a, 16, 16, 16,\nb, 24, 24, 24,\n")
            .with_format(TopologyFormat::Gemm)
    }

    #[test]
    fn run_request_produces_summary_and_reports() {
        let service = SimService::new();
        let req = SimRequest::Run(RunSpec {
            config: ConfigSource::Default,
            topology: gemm_topology(),
            features: Features {
                energy: true,
                ..Default::default()
            },
        });
        let SimResponse::Run(body) = service.handle(&req).unwrap() else {
            panic!("expected run body")
        };
        assert_eq!(body.summary.layers, 2);
        assert!(body.summary.total_cycles > 0);
        assert!(body.summary.energy_mj > 0.0);
        let names: Vec<_> = body.reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "COMPUTE_REPORT.csv",
                "BANDWIDTH_REPORT.csv",
                "ENERGY_REPORT.csv"
            ]
        );
    }

    #[test]
    fn repeated_requests_share_the_plan_cache() {
        let service = SimService::new();
        let req = SimRequest::Run(RunSpec {
            config: ConfigSource::Default,
            topology: gemm_topology(),
            features: Features::default(),
        });
        service.handle(&req).unwrap();
        let after_first = service.plan_cache().stats();
        service.handle(&req).unwrap();
        let after_second = service.plan_cache().stats();
        assert_eq!(
            after_second.misses, after_first.misses,
            "second identical request must plan nothing"
        );
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn bad_inputs_map_to_the_right_categories() {
        let service = SimService::new();
        // Unknown cfg key -> config.
        let req = SimRequest::Run(RunSpec {
            config: ConfigSource::Inline("ArrayHieght : 32\n".into()),
            topology: gemm_topology(),
            features: Features::default(),
        });
        assert_eq!(service.handle(&req).unwrap_err().kind(), "config");
        // Duplicate layer name -> topology.
        let req = SimRequest::Run(RunSpec {
            config: ConfigSource::Default,
            topology: TopologySource::inline("t", "a, 8, 8, 8,\na, 8, 8, 8,\n"),
            features: Features::default(),
        });
        let err = service.handle(&req).unwrap_err();
        assert_eq!(err.kind(), "topology");
        assert!(err.message().contains("duplicate layer name 'a'"), "{err}");
        // Missing file -> io.
        let req = SimRequest::Run(RunSpec {
            config: ConfigSource::Path("/nonexistent/x.cfg".into()),
            topology: gemm_topology(),
            features: Features::default(),
        });
        assert_eq!(service.handle(&req).unwrap_err().kind(), "io");
        // Invalid core geometry (SRAM too small to double-buffer) -> config.
        let req = SimRequest::Run(RunSpec {
            config: ConfigSource::Inline(
                "ArrayHeight : 512\nArrayWidth : 512\nIfmapSramSzkB : 1\n\
                 FilterSramSzkB : 1\nOfmapSramSzkB : 1\n"
                    .into(),
            ),
            topology: gemm_topology(),
            features: Features::default(),
        });
        assert_eq!(service.handle(&req).unwrap_err().kind(), "config");
        // Bad cores string -> config.
        let req = SimRequest::Run(RunSpec {
            config: ConfigSource::Default,
            topology: gemm_topology(),
            features: Features {
                cores: Some("2by2".into()),
                ..Default::default()
            },
        });
        assert_eq!(service.handle(&req).unwrap_err().kind(), "config");
    }

    #[test]
    fn oversized_sweeps_get_their_own_cache_small_ones_share() {
        let service = SimService::new();
        let small = service
            .prepare_sweep(&SweepRequest {
                spec: ConfigSource::Inline("array = 8x8, 16x16\n".into()),
                base_config: ConfigSource::Default,
                topologies: vec![gemm_topology()],
                shards: 1,
            })
            .unwrap();
        assert!(
            Arc::ptr_eq(&small.cache, service.plan_cache()),
            "small grids warm the shared cache"
        );
        // 72 bandwidths x 64 arrays x 2 layers = 9216 worst-case plans
        // > SERVICE_CACHE_CAPACITY: a right-sized private cache instead
        // of thrashing (and wiping) the shared one.
        let bandwidths: Vec<String> = (1..=72).map(|b| b.to_string()).collect();
        let arrays: Vec<String> = (1..=64).map(|n| format!("{n}x{n}")).collect();
        let big_spec = format!(
            "bandwidth = {}\narray = {}\n",
            bandwidths.join(", "),
            arrays.join(", ")
        );
        let big = service
            .prepare_sweep(&SweepRequest {
                spec: ConfigSource::Inline(big_spec),
                base_config: ConfigSource::Default,
                topologies: vec![gemm_topology()],
                shards: 1,
            })
            .unwrap();
        assert!(
            !Arc::ptr_eq(&big.cache, service.plan_cache()),
            "oversized grids must not evict the shared cache"
        );
    }

    #[test]
    fn sweep_request_round_trips() {
        let service = SimService::new();
        let req = SimRequest::Sweep(SweepRequest {
            spec: ConfigSource::Inline("array = 8x8, 16x16\nenergy = true\n".into()),
            base_config: ConfigSource::Default,
            topologies: vec![gemm_topology()],
            shards: 2,
        });
        let SimResponse::Sweep(body) = service.handle(&req).unwrap() else {
            panic!("expected sweep body")
        };
        assert_eq!(body.grid_points, 2);
        assert_eq!(body.runs, 2);
        assert!(!body.pareto_frontier.is_empty());
        assert_eq!(body.reports[0].name, "SWEEP_REPORT.csv");
        assert_eq!(body.reports[1].name, "SWEEP_REPORT.json");
    }

    /// A deliberately tiny transformer so unit tests stay fast in debug
    /// builds; the real presets are exercised by the integration tests
    /// and CI smoke job against the release binary.
    const TINY_LLM_CFG: &str = "[llm]\nPreset : gpt2-xl\nLayers : 2\nDModel : 64\n\
         Heads : 4\nKvHeads : 4\nDFf : 128\nVocab : 256\nSeq : 16\nBatch : 1\n";

    #[test]
    fn llm_request_resolves_cfg_model_with_overrides() {
        let service = SimService::new();
        let req = LlmRequest {
            config: ConfigSource::Inline(TINY_LLM_CFG.into()),
            phase: Some("decode".into()),
            context: Some(64),
            ..Default::default()
        };
        let SimResponse::Llm(body) = service.handle(&SimRequest::Llm(req)).unwrap() else {
            panic!("expected llm body")
        };
        assert_eq!(body.workload, "gpt2-xl");
        assert_eq!(body.phase, "decode");
        assert_eq!(body.context, 64);
        assert!(body.params > 0 && body.kv_cache_bytes > 0);
        assert!(body.summary.total_cycles > 0);
        assert_eq!(body.reports[0].name, "COMPUTE_REPORT.csv");
    }

    #[test]
    fn llm_workload_preset_keeps_cfg_phase_and_context() {
        let service = SimService::new();
        // The cfg names one model, the request swaps in a preset: the
        // section's phase/context survive the swap.
        let req = LlmRequest {
            config: ConfigSource::Inline(format!("{TINY_LLM_CFG}Phase : decode\nContext : 32\n")),
            workload: Some("gpt2-xl".into()),
            seq: Some(16),
            batch: Some(2),
            ..Default::default()
        };
        let prepared = service.prepare_llm(&req).unwrap();
        assert_eq!(
            prepared.llm.spec.layers, 48,
            "preset replaced the tiny model"
        );
        assert_eq!(prepared.llm.phase, Phase::Decode);
        assert_eq!(prepared.llm.effective_context(), 32);
        assert_eq!(prepared.llm.spec.seq, 16);
        assert_eq!(prepared.llm.spec.batch, 2);
        // Decode topologies put batch rows through every block GEMM.
        assert!(prepared.run.topology.name().ends_with("decode"));
    }

    #[test]
    fn llm_bad_inputs_are_config_errors() {
        let service = SimService::new();
        // No model named anywhere.
        let err = service.prepare_llm(&LlmRequest::default()).unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.message().contains("[llm]"), "{err}");
        // Unknown preset names the vocabulary.
        let err = service
            .prepare_llm(&LlmRequest::for_workload("llama-13b"))
            .unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.message().contains("llama-7b"), "{err}");
        // Bad phase.
        let req = LlmRequest {
            phase: Some("training".into()),
            ..LlmRequest::for_workload("gpt2-xl")
        };
        let err = service.prepare_llm(&req).unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.message().contains("unknown phase"), "{err}");
    }

    #[test]
    fn workload_topology_source_resolves_the_registry() {
        let topo = load_topology(&TopologySource::from_workload("gpt2-xl:decode")).unwrap();
        assert!(topo.name().ends_with("decode"));
        assert!(topo.len() > 1);
        let err = load_topology(&TopologySource::from_workload("nonesuch")).unwrap_err();
        assert_eq!(err.kind(), "topology");
        assert!(err.message().contains("known workloads"), "{err}");
    }

    #[test]
    fn scaleout_request_round_trips_and_shares_the_cache() {
        let service = SimService::new();
        let mut req = ScaleoutRequest::for_topology(gemm_topology());
        req.chips = Some(8);
        req.strategy = Some("data".into());
        let SimResponse::Scaleout(body) =
            service.handle(&SimRequest::Scaleout(req.clone())).unwrap()
        else {
            panic!("expected scaleout body")
        };
        assert_eq!(body.chips, 8);
        assert_eq!(body.strategy, "dp");
        assert_eq!(body.layers, 2);
        assert!(body.total_cycles >= body.compute_cycles);
        assert_eq!(body.reports[0].name, "SCALEOUT_REPORT.csv");
        assert!(body.reports[0].content.starts_with("LayerName, Stage,"));
        // The second identical request plans nothing: shards hit the
        // service's shared cache.
        let before = service.plan_cache().stats();
        service.handle(&SimRequest::Scaleout(req)).unwrap();
        let after = service.plan_cache().stats();
        assert_eq!(after.misses, before.misses);
        assert!(after.hits > before.hits);
    }

    #[test]
    fn scaleout_overrides_and_cfg_section_compose() {
        let service = SimService::new();
        let mut req = ScaleoutRequest::for_topology(gemm_topology());
        req.config = ConfigSource::Inline(
            "[scaleout]\nChips : 4\nStrategy : tensor\nLinkGbps : 25\n".into(),
        );
        let prepared = service.prepare_scaleout(&req).unwrap();
        assert_eq!(prepared.spec.chips, 4);
        assert_eq!(prepared.spec.strategy, Strategy::TensorParallel);
        // The request override wins over the cfg section.
        req.chips = Some(16);
        req.strategy = Some("pipeline".into());
        let prepared = service.prepare_scaleout(&req).unwrap();
        assert_eq!(prepared.spec.chips, 16);
        assert_eq!(prepared.spec.strategy, Strategy::PipelineParallel);
        assert_eq!(prepared.spec.link_gbps, 25.0, "untouched knobs survive");
    }

    #[test]
    fn scaleout_bad_parameters_are_config_errors() {
        let service = SimService::new();
        let mut req = ScaleoutRequest::for_topology(gemm_topology());
        req.fabric = Some("torus".into());
        assert_eq!(
            service
                .handle(&SimRequest::Scaleout(req))
                .unwrap_err()
                .kind(),
            "config"
        );
        let mut req = ScaleoutRequest::for_topology(gemm_topology());
        req.chips = Some(6);
        req.fabric = Some("switch".into());
        let err = service.handle(&SimRequest::Scaleout(req)).unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.message().contains("power-of-two"), "{err}");
    }

    #[test]
    fn area_and_version_answer() {
        let service = SimService::new();
        let SimResponse::Area(area) = service
            .handle(&SimRequest::AreaReport(AreaSpec::default()))
            .unwrap()
        else {
            panic!("expected area body")
        };
        assert!(area.total_mm2 > 0.0);
        assert!(area.reports[0].content.starts_with("pe_array_mm2"));
        let SimResponse::Version(v) = service.handle(&SimRequest::Version).unwrap() else {
            panic!("expected version body")
        };
        assert_eq!(v.api, API_VERSION);
        assert!(v.version.starts_with("scalesim "));
    }

    #[test]
    fn stats_request_snapshots_the_cache_and_reports_zero_serve_counters() {
        let service = SimService::new();
        let req = SimRequest::Run(RunSpec {
            config: ConfigSource::Default,
            topology: gemm_topology(),
            features: Features::default(),
        });
        service.handle(&req).unwrap();
        service.handle(&req).unwrap();
        let SimResponse::Stats(stats) = service.handle(&SimRequest::Stats).unwrap() else {
            panic!("expected stats body")
        };
        assert_eq!(stats.cache_misses, 2, "two layers planned once");
        assert_eq!(stats.cache_hits, 2, "second request reused both plans");
        assert_eq!(stats.cache_plans, 2);
        assert!((stats.cache_hit_rate - 0.5).abs() < 1e-12);
        assert!(stats.cache_resident_bytes > 0);
        assert_eq!(stats.cache_budget_bytes, 0, "count-capped by default");
        // A one-shot service records no serve-loop counters: those are
        // bumped by the serve transport, not by handle().
        assert_eq!(stats.requests_total, 0);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.latency_count, 0);
    }

    #[test]
    fn expired_token_yields_deadline_and_a_live_token_changes_nothing() {
        let service = SimService::new();
        for req in [
            SimRequest::Run(RunSpec {
                config: ConfigSource::Default,
                topology: gemm_topology(),
                features: Features::default(),
            }),
            SimRequest::Sweep(SweepRequest {
                spec: ConfigSource::Inline("array = 8x8\n".into()),
                base_config: ConfigSource::Default,
                topologies: vec![gemm_topology()],
                shards: 1,
            }),
            SimRequest::Scaleout(ScaleoutRequest::for_topology(gemm_topology())),
        ] {
            let dead = CancelToken::after_ms(0);
            let err = service.handle_cancellable(&req, Some(&dead)).unwrap_err();
            assert_eq!(err.kind(), "deadline");
            assert_eq!(err.exit_code(), 124);
            assert_eq!(err.message(), "deadline of 0 ms exceeded");
            // A token that never fires must not perturb the response.
            let live = CancelToken::after_ms(600_000);
            let with_token = service.handle_cancellable(&req, Some(&live)).unwrap();
            let without = service.handle(&req).unwrap();
            assert_eq!(
                with_token, without,
                "cancel tokens cost checks, not results"
            );
        }
    }

    /// Golden test for the Prometheus text exposition: the exact line
    /// sequence — HELP text, TYPE declarations, metric names, label
    /// sets — is pinned, with sample *values* normalized to `V` (they
    /// depend on machine parallelism and process-global counters).
    /// Scrapers key on names and labels; renaming or reordering a
    /// series is a breaking change and must show up here.
    #[test]
    fn prometheus_exposition_format_is_pinned() {
        let service = SimService::new();
        let body = service.render_prometheus();
        let normalized: String = body
            .lines()
            .map(|line| {
                if line.starts_with('#') {
                    format!("{line}\n")
                } else {
                    let cut = line.rfind(' ').expect("sample line has a value");
                    format!("{} V\n", &line[..cut])
                }
            })
            .collect();
        let golden = "\
# HELP scalesim_requests_total Requests received (queued or answered inline, including shed).
# TYPE scalesim_requests_total counter
scalesim_requests_total V
# HELP scalesim_requests_completed_total Requests fully handled (ok or typed error written).
# TYPE scalesim_requests_completed_total counter
scalesim_requests_completed_total V
# HELP scalesim_requests_shed_total Requests shed with busy (queue full or session cap).
# TYPE scalesim_requests_shed_total counter
scalesim_requests_shed_total V
# HELP scalesim_deadline_expired_total Requests that returned a deadline error.
# TYPE scalesim_deadline_expired_total counter
scalesim_deadline_expired_total V
# HELP scalesim_requests_in_flight Requests currently queued or executing.
# TYPE scalesim_requests_in_flight gauge
scalesim_requests_in_flight V
# HELP scalesim_handle_latency_us Request handle latency (decode to encode), microseconds.
# TYPE scalesim_handle_latency_us histogram
scalesim_handle_latency_us_bucket{le=\"+Inf\"} V
scalesim_handle_latency_us_sum V
scalesim_handle_latency_us_count V
# HELP scalesim_plan_cache_hits_total Plan-cache lookups answered from the cache.
# TYPE scalesim_plan_cache_hits_total counter
scalesim_plan_cache_hits_total V
# HELP scalesim_plan_cache_misses_total Plan-cache lookups that planned fresh.
# TYPE scalesim_plan_cache_misses_total counter
scalesim_plan_cache_misses_total V
# HELP scalesim_plan_cache_evictions_total Plans evicted to stay within the cache bound.
# TYPE scalesim_plan_cache_evictions_total counter
scalesim_plan_cache_evictions_total V
# HELP scalesim_plan_cache_resident_bytes Bytes held by resident plans.
# TYPE scalesim_plan_cache_resident_bytes gauge
scalesim_plan_cache_resident_bytes V
# HELP scalesim_sched_workers Worker threads in the global scheduler pool.
# TYPE scalesim_sched_workers gauge
scalesim_sched_workers V
# HELP scalesim_sched_steals_total Tasks stolen from a sibling worker's queue.
# TYPE scalesim_sched_steals_total counter
scalesim_sched_steals_total V
# HELP scalesim_sched_spawns_total Detached tasks spawned onto the pool.
# TYPE scalesim_sched_spawns_total counter
scalesim_sched_spawns_total V
# HELP scalesim_sched_park_wakeups_total Times an idle worker woke from park.
# TYPE scalesim_sched_park_wakeups_total counter
scalesim_sched_park_wakeups_total V
# HELP scalesim_spans_total Span/instant events recorded per category.
# TYPE scalesim_spans_total counter
scalesim_spans_total{category=\"sched\"} V
scalesim_spans_total{category=\"pipeline\"} V
scalesim_spans_total{category=\"cache\"} V
scalesim_spans_total{category=\"dram\"} V
scalesim_spans_total{category=\"collective\"} V
scalesim_spans_total{category=\"serve\"} V
scalesim_spans_total{category=\"sweep\"} V
";
        assert_eq!(normalized, golden, "Prometheus exposition drifted");
    }

    #[test]
    fn multicore_feature_parses_grids() {
        let config = load_config(
            &ConfigSource::Default,
            &Features {
                cores: Some("2x2".into()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(config.multicore.unwrap().grid.cores(), 4);
        let single = load_config(
            &ConfigSource::Default,
            &Features {
                cores: Some("1x1".into()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(single.multicore.is_none());
    }
}
