//! The SCALE-Sim v3 engine: per-layer orchestration of all five features.

use crate::config::{ScaleSimConfig, SparsityMode};
use crate::dram::dram_analysis;
use crate::layout_analysis::layout_slowdown_for_gemm;
use crate::result::{LayerResult, RunResult};
use scalesim_energy::{
    ActionCounts, ArchSpec, AreaBreakdown, AreaConfig, AreaTable, EnergyModel, LayerActivity,
};
use scalesim_multicore::{core_subgemm, L2Report, MappingDims};
use scalesim_sparse::{SparseReport, SparsityPattern};
use scalesim_systolic::{
    parallel_map, timing, CoreSim, Dataflow, GemmShape, IdealBandwidthStore, LayerReport,
    PlanCache, PlannedLayer, Topology,
};
use std::sync::Arc;

/// The integrated simulator.
#[derive(Debug, Clone)]
pub struct ScaleSim {
    config: ScaleSimConfig,
    /// Shared across layers (and threads): fetch plans depend only on the
    /// array/dataflow/GEMM/scratchpad geometry, never on the backing
    /// store, so repeated shapes re-use one plan across the whole run.
    plan_cache: Arc<PlanCache>,
}

impl ScaleSim {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the core configuration is invalid.
    pub fn new(config: ScaleSimConfig) -> Self {
        config
            .core
            .validate()
            .unwrap_or_else(|e| panic!("invalid configuration: {e}"));
        Self {
            config,
            plan_cache: Arc::new(PlanCache::new()),
        }
    }

    /// The plan cache shared by this simulator's runs.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// Replaces the plan cache with a shared one, so *several* simulator
    /// instances — e.g. every configuration of a design-space sweep —
    /// plan each distinct `(array, dataflow, GEMM, scratchpad)` shape
    /// once between them. Safe across arbitrary configurations: the
    /// cache key carries everything a plan depends on.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = cache;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &ScaleSimConfig {
        &self.config
    }

    /// Estimates the configured accelerator's silicon area (Accelergy's
    /// area reporting): PE array + SRAMs from the core configuration, bank
    /// count from the layout feature when enabled, DRAM controllers from
    /// the DRAM feature when enabled.
    pub fn area_report(&self) -> AreaBreakdown {
        let arr = self.config.core.array;
        let mem = &self.config.core.memory;
        let arch = ArchSpec::new(
            arr.rows(),
            arr.cols(),
            mem.ifmap_words * mem.bytes_per_word,
            mem.filter_words * mem.bytes_per_word,
            mem.ofmap_words * mem.bytes_per_word,
        );
        let mut cfg = AreaConfig::new(arch);
        if self.config.enable_layout {
            cfg = cfg.with_sram_banks(self.config.layout.num_banks);
        }
        // Even the v2 ideal-bandwidth model implies one memory interface;
        // the DRAM feature's channel count applies when enabled.
        if self.config.enable_dram {
            cfg = cfg.with_dram_channels(self.config.dram.channels);
        }
        cfg.estimate(&AreaTable::eyeriss_65nm())
    }

    /// Applies the sparsity transform to a layer's GEMM, returning the
    /// compressed GEMM and the pattern (None when dense).
    fn sparsify(&self, gemm: GemmShape, seed_tag: u64) -> (GemmShape, Option<SparsityPattern>) {
        match self.config.sparsity {
            None => (gemm, None),
            Some(SparsityMode::LayerWise(ratio)) => {
                let pattern = SparsityPattern::layer_wise(gemm.k, ratio);
                let kp = pattern.effective_k().max(1);
                (GemmShape::new(gemm.m, gemm.n, kp), Some(pattern))
            }
            Some(SparsityMode::RowWise { block, seed }) => {
                let pattern = SparsityPattern::row_wise(gemm.k, block, seed ^ seed_tag);
                let kp = pattern.effective_k().max(1);
                (GemmShape::new(gemm.m, gemm.n, kp), Some(pattern))
            }
        }
    }

    fn effective_dataflow(&self) -> Dataflow {
        // The paper fixes weight-stationary for all sparsity simulations.
        if self.config.sparsity.is_some() {
            Dataflow::WeightStationary
        } else {
            self.config.core.dataflow
        }
    }

    /// Simulates the (possibly partitioned) compute, returning the
    /// representative-core report, core count, NoC words, and the
    /// representative core's timing inputs (for DRAM re-timing).
    fn simulate_core(
        &self,
        name: &str,
        gemm: GemmShape,
    ) -> (LayerReport, usize, u64, Arc<PlannedLayer>) {
        let mut core_cfg = self.config.core.clone();
        core_cfg.dataflow = self.effective_dataflow();
        let (sub_gemm, cores, noc_words, bandwidth) = match &self.config.multicore {
            None => (gemm, 1, 0, core_cfg.memory.dram_bandwidth),
            Some(mc) => {
                let sub = core_subgemm(core_cfg.dataflow, mc.scheme, gemm, mc.grid);
                let l2 = mc.l2.map(|_| {
                    L2Report::evaluate(
                        mc.scheme,
                        MappingDims::new(core_cfg.dataflow, gemm),
                        mc.grid,
                    )
                });
                let noc = l2.map_or(0, |r| r.l1_fill_words);
                let bw = (core_cfg.memory.dram_bandwidth / mc.grid.cores() as f64).max(0.125);
                (sub, mc.grid.cores(), noc, bw)
            }
        };
        let mut shared_cfg = core_cfg.clone();
        shared_cfg.memory.dram_bandwidth = bandwidth;
        let sim = CoreSim::new(shared_cfg).with_plan_cache(Arc::clone(&self.plan_cache));
        let planned = sim.plan_gemm_shared(sub_gemm);
        let mut store = IdealBandwidthStore::new(bandwidth);
        let memory = timing(&planned.inputs, &mut store);
        let report = LayerReport {
            name: name.to_string(),
            gemm: sub_gemm,
            compute: planned.compute,
            memory,
            sram: planned.sram,
        };
        (report, cores, noc_words, planned)
    }

    /// Runs one GEMM layer through the enabled pipeline.
    pub fn run_gemm(&self, name: &str, dense_gemm: GemmShape) -> LayerResult {
        let seed_tag = name.bytes().map(u64::from).sum::<u64>();
        let (gemm, pattern) = self.sparsify(dense_gemm, seed_tag);
        let (report, cores, noc_words, planned) = self.simulate_core(name, gemm);

        // §V: three-step DRAM flow on the representative core's plan.
        let dram = if self.config.enable_dram {
            Some(dram_analysis(
                &planned.inputs,
                self.config.core.memory.dram_bandwidth,
                self.config.core.memory.bytes_per_word,
                &self.config.dram,
            ))
        } else {
            None
        };

        // §VI: layout bank-conflict analysis of the demand stream.
        let layout = if self.config.enable_layout {
            Some(layout_slowdown_for_gemm(
                self.config.core.array,
                self.effective_dataflow(),
                gemm,
                &self.config.layout,
            ))
        } else {
            None
        };

        // §IV: sparse storage report.
        let sparse = pattern.as_ref().map(|p| {
            let mut rep = SparseReport::new();
            rep.add_layer(
                name,
                p,
                dense_gemm.n,
                self.config.sparse_format,
                self.config.core.memory.bytes_per_word * 8,
            );
            rep.rows()[0].clone()
        });

        // §VII: energy.
        let energy = if self.config.enable_energy {
            let total_cycles = dram
                .as_ref()
                .map(|d| d.summary.total_cycles)
                .unwrap_or(report.memory.total_cycles);
            // With a shared L2, duplicated operand partitions are fetched
            // from DRAM once and fanned out over the NoC; scale the
            // per-core DRAM reads down by the measured duplication factor.
            let dram_read_scale = match (&self.config.multicore, cores) {
                (Some(mc), c) if c > 1 && mc.l2.is_some() => {
                    let l2 = L2Report::evaluate(
                        mc.scheme,
                        MappingDims::new(self.effective_dataflow(), gemm),
                        mc.grid,
                    );
                    let distinct = (l2.required_words / 2).max(1) as f64;
                    (distinct / l2.l1_fill_words.max(1) as f64).min(1.0)
                }
                _ => 1.0,
            };
            let activity = LayerActivity {
                total_cycles,
                macs: report.compute.macs,
                utilization: report.compute.utilization,
                ifmap_sram_reads: report.sram.ifmap_reads,
                ifmap_sram_repeats: report.sram.ifmap_repeat_reads,
                filter_sram_reads: report.sram.filter_reads,
                filter_sram_repeats: report.sram.filter_repeat_reads,
                ofmap_sram_accesses: report.sram.ofmap_reads + report.sram.ofmap_writes,
                ofmap_sram_repeats: report.sram.ofmap_repeat_accesses,
                dram_reads: (report.memory.total_dram_reads() as f64 * dram_read_scale) as u64,
                dram_writes: report.memory.total_dram_writes(),
                // Per-core share: the counts are replicated across cores
                // below, which restores the grid total.
                noc_words: noc_words / cores.max(1) as u64,
            };
            let arr = self.config.core.array;
            let mem = &self.config.core.memory;
            let arch = ArchSpec::new(
                arr.rows(),
                arr.cols(),
                mem.ifmap_words * mem.bytes_per_word,
                mem.filter_words * mem.bytes_per_word,
                mem.ofmap_words * mem.bytes_per_word,
            );
            let model = EnergyModel::eyeriss_65nm(arch);
            let ports = (arr.rows() as u64, arr.cols() as u64, arr.cols() as u64);
            // Idle PEs hold their operands (constant-input switching) rather
            // than being clock-gated: the paper's Table V / Fig. 15 energies
            // grow with array size at fixed work, which requires a
            // significant per-idle-PE-cycle cost.
            let mut counts =
                ActionCounts::from_layer(&activity, arch.num_pes() as u64, ports, false);
            if cores > 1 {
                // Symmetric cores: scale all activity by the core count.
                let single = counts;
                for _ in 1..cores {
                    counts.merge(&single);
                }
            }
            Some(model.evaluate(&counts, total_cycles))
        } else {
            None
        };

        LayerResult {
            name: name.to_string(),
            gemm,
            dense_gemm,
            report,
            dram,
            layout,
            energy,
            sparse,
            cores,
            noc_words,
        }
    }

    /// Runs a whole topology.
    ///
    /// Layers execute concurrently on a scoped worker pool (control the
    /// size with `SCALESIM_THREADS`) sharing this simulator's plan cache;
    /// results come back in layer order, identical to serial execution.
    pub fn run_topology(&self, topology: &Topology) -> RunResult {
        RunResult {
            layers: parallel_map(topology.layers(), |_, l| self.run_gemm(l.name(), l.gemm())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DramIntegration, MultiCoreIntegration};
    use scalesim_multicore::{L2Config, PartitionGrid, PartitionScheme};
    use scalesim_sparse::NmRatio;
    use scalesim_systolic::{ArrayShape, MemoryConfig, SimConfig};

    fn small_core() -> SimConfig {
        let mut cfg = SimConfig::builder()
            .array(ArrayShape::new(8, 8))
            .dataflow(Dataflow::WeightStationary)
            .build();
        cfg.memory = MemoryConfig::from_kilobytes(16, 16, 8, 2);
        cfg
    }

    #[test]
    fn v2_parity_run() {
        let mut config = ScaleSimConfig::default();
        config.core = small_core();
        let sim = ScaleSim::new(config);
        let r = sim.run_gemm("g", GemmShape::new(32, 32, 32));
        assert!(r.dram.is_none() && r.layout.is_none() && r.energy.is_none());
        assert_eq!(r.total_cycles(), r.report.memory.total_cycles);
    }

    #[test]
    fn full_pipeline_produces_all_reports() {
        let mut config = ScaleSimConfig::full();
        config.core = small_core();
        config.dram = DramIntegration {
            channels: 2,
            ..Default::default()
        };
        let sim = ScaleSim::new(config);
        let r = sim.run_gemm("g", GemmShape::new(48, 48, 48));
        assert!(r.dram.is_some());
        assert!(r.layout.is_some());
        assert!(r.energy.is_some());
        let d = r.dram.as_ref().unwrap();
        assert!(d.stats.reads > 0);
        assert!(r.energy.as_ref().unwrap().total_pj() > 0.0);
    }

    #[test]
    fn sparsity_compresses_and_speeds_up() {
        let mut dense_cfg = ScaleSimConfig::default();
        dense_cfg.core = small_core();
        let dense = ScaleSim::new(dense_cfg.clone()).run_gemm("g", GemmShape::new(64, 64, 128));
        let mut sparse_cfg = dense_cfg;
        sparse_cfg.sparsity = Some(SparsityMode::LayerWise(NmRatio::new(1, 4).unwrap()));
        let sparse = ScaleSim::new(sparse_cfg).run_gemm("g", GemmShape::new(64, 64, 128));
        assert_eq!(sparse.gemm.k, 32, "1:4 compresses K to a quarter");
        assert!(sparse.total_cycles() < dense.total_cycles());
        let row = sparse.sparse.as_ref().unwrap();
        assert!(row.new_filter_bytes() < row.original_bytes);
    }

    #[test]
    fn multicore_reduces_latency_and_reports_noc() {
        let mut single = ScaleSimConfig::default();
        single.core = small_core();
        let r1 = ScaleSim::new(single.clone()).run_gemm("g", GemmShape::new(128, 128, 128));
        let mut multi = single;
        multi.multicore = Some(MultiCoreIntegration {
            grid: PartitionGrid::new(2, 2),
            scheme: PartitionScheme::Spatial,
            l2: Some(L2Config::default()),
        });
        let r4 = ScaleSim::new(multi).run_gemm("g", GemmShape::new(128, 128, 128));
        assert!(r4.report.compute.total_compute_cycles < r1.report.compute.total_compute_cycles);
        assert_eq!(r4.cores, 4);
        assert!(r4.noc_words > 0);
    }

    #[test]
    fn topology_run_sums_layers() {
        let mut config = ScaleSimConfig::default();
        config.core = small_core();
        let topo = Topology::from_layers(
            "t",
            vec![
                scalesim_systolic::Layer::gemm_layer("a", 16, 16, 16),
                scalesim_systolic::Layer::gemm_layer("b", 24, 24, 24),
            ],
        );
        let run = ScaleSim::new(config).run_topology(&topo);
        assert_eq!(run.layers.len(), 2);
        assert_eq!(
            run.total_cycles(),
            run.layers.iter().map(|l| l.total_cycles()).sum::<u64>()
        );
        assert!(run.compute_report_csv().contains("a,"));
    }

    #[test]
    fn energy_with_dram_uses_stall_aware_cycles() {
        let mut config = ScaleSimConfig::default();
        config.core = small_core();
        config.enable_energy = true;
        let no_dram = ScaleSim::new(config.clone()).run_gemm("g", GemmShape::new(64, 64, 64));
        config.enable_dram = true;
        let with_dram = ScaleSim::new(config).run_gemm("g", GemmShape::new(64, 64, 64));
        // DRAM stalls extend runtime → more leakage → at least as much energy.
        assert!(
            with_dram.energy.as_ref().unwrap().cycles()
                >= no_dram.energy.as_ref().unwrap().cycles()
        );
    }
}
