//! The SCALE-Sim v3 engine: drives the staged per-layer pipeline.
//!
//! [`ScaleSim`] is a thin, cloneable handle over one [`LayerPipeline`]
//! built from its configuration (see [`crate::pipeline`] for the stage
//! list). Single layers run through [`run_gemm`](ScaleSim::run_gemm);
//! whole topologies stream through a [`ResultSink`] with bounded result
//! memory ([`run_topology_with`](ScaleSim::run_topology_with)) or
//! collect into a [`RunResult`] ([`run_topology`](ScaleSim::run_topology)).

use crate::config::ScaleSimConfig;
use crate::pipeline::{LayerPipeline, PipelineBuilder, StageTiming};
use crate::result::{LayerResult, RunResult};
use crate::sink::{CollectSink, ResultSink};
use scalesim_energy::{ArchSpec, AreaBreakdown, AreaConfig, AreaTable};
use scalesim_systolic::{
    parallel_map_streamed, parallel_map_streamed_cancellable, GemmShape, PlanCache, Topology,
};
use std::sync::Arc;

/// Block size of the streaming topology runner: at most this many layer
/// results are buffered at once, regardless of topology length.
pub const STREAM_BLOCK: usize = 64;

/// Statistics of a streaming topology run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Layers executed.
    pub layers: usize,
    /// Peak number of simultaneously buffered layer results — bounded by
    /// [`STREAM_BLOCK`], independent of the layer count.
    pub peak_buffered: usize,
}

/// The integrated simulator.
#[derive(Debug, Clone)]
pub struct ScaleSim {
    /// The staged pipeline; shared by clones (it is immutable), so the
    /// plan cache and the stage profiler aggregate across them.
    pipeline: Arc<LayerPipeline>,
}

impl ScaleSim {
    /// Creates the simulator, building the stage pipeline once from the
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the core configuration is invalid; the non-panicking
    /// form is [`try_new`](Self::try_new) (what the request/response
    /// facade uses).
    pub fn new(config: ScaleSimConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid configuration: {e}"))
    }

    /// Creates the simulator, reporting an invalid core configuration
    /// as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the validation failure of `config.core`.
    pub fn try_new(config: ScaleSimConfig) -> Result<Self, scalesim_systolic::SimError> {
        config.core.validate()?;
        Ok(Self {
            pipeline: Arc::new(PipelineBuilder::new(config).build()),
        })
    }

    /// The plan cache shared by this simulator's runs.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        self.pipeline.env().plan_cache()
    }

    /// Creates the simulator with a shared plan cache in one step —
    /// what [`with_plan_cache`](Self::with_plan_cache) produces, without
    /// building and discarding an intermediate pipeline (the sweep
    /// executor constructs one simulator per run, so this is its hot
    /// path).
    ///
    /// # Panics
    ///
    /// Panics if the core configuration is invalid; the non-panicking
    /// form is [`try_new_with_cache`](Self::try_new_with_cache).
    pub fn new_with_cache(config: ScaleSimConfig, cache: Arc<PlanCache>) -> Self {
        Self::try_new_with_cache(config, cache)
            .unwrap_or_else(|e| panic!("invalid configuration: {e}"))
    }

    /// [`new_with_cache`](Self::new_with_cache), reporting an invalid
    /// core configuration as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the validation failure of `config.core`.
    pub fn try_new_with_cache(
        config: ScaleSimConfig,
        cache: Arc<PlanCache>,
    ) -> Result<Self, scalesim_systolic::SimError> {
        config.core.validate()?;
        Ok(Self {
            pipeline: Arc::new(PipelineBuilder::new(config).plan_cache(cache).build()),
        })
    }

    /// Replaces the plan cache with a shared one, so *several* simulator
    /// instances — e.g. every configuration of a design-space sweep —
    /// plan each distinct `(array, dataflow, GEMM, scratchpad)` shape
    /// once between them. Safe across arbitrary configurations: the
    /// cache key carries everything a plan depends on.
    ///
    /// Rebuilds the pipeline: any stage-profiling *counters* accumulated
    /// so far restart from zero (profiling stays enabled).
    pub fn with_plan_cache(self, cache: Arc<PlanCache>) -> Self {
        let profiled = self.pipeline.profile().is_some();
        Self {
            pipeline: Arc::new(
                PipelineBuilder::new(self.config().clone())
                    .plan_cache(cache)
                    .profile_stages(profiled)
                    .build(),
            ),
        }
    }

    /// Enables per-stage call/time accounting; read it back with
    /// [`stage_profile`](Self::stage_profile) (the `--profile-stages`
    /// flag of the CLI). Rebuilds the pipeline, so enable profiling
    /// before running layers.
    pub fn with_stage_profiling(self) -> Self {
        let cache = Arc::clone(self.plan_cache());
        Self {
            pipeline: Arc::new(
                PipelineBuilder::new(self.config().clone())
                    .plan_cache(cache)
                    .profile_stages(true)
                    .build(),
            ),
        }
    }

    /// The per-stage timings accumulated so far (None unless built with
    /// [`with_stage_profiling`](Self::with_stage_profiling)).
    pub fn stage_profile(&self) -> Option<Vec<StageTiming>> {
        self.pipeline.profile()
    }

    /// The staged pipeline this simulator drives.
    pub fn pipeline(&self) -> &LayerPipeline {
        &self.pipeline
    }

    /// The configuration in use.
    pub fn config(&self) -> &ScaleSimConfig {
        self.pipeline.env().config()
    }

    /// Estimates the configured accelerator's silicon area (Accelergy's
    /// area reporting): PE array + SRAMs from the core configuration, bank
    /// count from the layout feature when enabled, DRAM controllers from
    /// the DRAM feature when enabled.
    pub fn area_report(&self) -> AreaBreakdown {
        let config = self.config();
        let arr = config.core.array;
        let mem = &config.core.memory;
        let arch = ArchSpec::new(
            arr.rows(),
            arr.cols(),
            mem.ifmap_words * mem.bytes_per_word,
            mem.filter_words * mem.bytes_per_word,
            mem.ofmap_words * mem.bytes_per_word,
        );
        let mut cfg = AreaConfig::new(arch);
        if config.enable_layout {
            cfg = cfg.with_sram_banks(config.layout.num_banks);
        }
        // Even the v2 ideal-bandwidth model implies one memory interface;
        // the DRAM feature's channel count applies when enabled.
        if config.enable_dram {
            cfg = cfg.with_dram_channels(config.dram.channels);
        }
        cfg.estimate(&AreaTable::eyeriss_65nm())
    }

    /// Runs one GEMM layer through the enabled pipeline.
    pub fn run_gemm(&self, name: &str, dense_gemm: GemmShape) -> LayerResult {
        self.pipeline.run_layer(name, dense_gemm)
    }

    /// Streams a whole topology through `sink` like
    /// [`run_topology_with`](Self::run_topology_with), but abandons the
    /// run with the token's typed [`SimError`](scalesim_api::SimError)
    /// once `cancel` expires. Cancellation is checked at two levels:
    /// the scheduler polls the token before *claiming* each layer (an
    /// expired request stops taking work off the shared pool
    /// immediately), and the pipeline checks it before every stage of
    /// a layer already in flight. Layers already finished when the
    /// deadline passes may still reach the sink (the caller discards
    /// partial output on error), and in-flight workers complete their
    /// current stage before stopping.
    ///
    /// # Errors
    ///
    /// Returns `cancel.to_error()` when the deadline expired mid-run.
    pub fn run_topology_cancellable(
        &self,
        topology: &Topology,
        sink: &mut dyn ResultSink,
        cancel: &crate::cancel::CancelToken,
    ) -> Result<StreamStats, scalesim_api::SimError> {
        let expired = || cancel.expired();
        let peak = parallel_map_streamed_cancellable(
            topology.layers(),
            STREAM_BLOCK,
            &expired,
            |_, layer| {
                self.pipeline
                    .run_layer_cancellable(layer.name(), layer.gemm(), Some(cancel))
            },
            |_, result| {
                if let Some(result) = result {
                    sink.layer(result);
                }
            },
        );
        if cancel.expired() {
            return Err(cancel.to_error());
        }
        Ok(StreamStats {
            layers: topology.len(),
            peak_buffered: peak,
        })
    }

    /// Streams a whole topology through `sink` with **bounded result
    /// memory**: layers execute concurrently on the shared scheduler
    /// (control the size with `SCALESIM_THREADS`) in blocks of
    /// [`STREAM_BLOCK`], and each block is pushed into the sink in layer
    /// order before the next begins. The sink observes exactly the
    /// sequence a serial run would produce.
    pub fn run_topology_with(&self, topology: &Topology, sink: &mut dyn ResultSink) -> StreamStats {
        let peak = parallel_map_streamed(
            topology.layers(),
            STREAM_BLOCK,
            |_, layer| self.run_gemm(layer.name(), layer.gemm()),
            |_, result| sink.layer(result),
        );
        StreamStats {
            layers: topology.len(),
            peak_buffered: peak,
        }
    }

    /// Runs a whole topology, collecting every layer.
    ///
    /// Layers execute concurrently on the shared scheduler (control the
    /// size with `SCALESIM_THREADS`) sharing this simulator's plan cache;
    /// results come back in layer order, identical to serial execution.
    pub fn run_topology(&self, topology: &Topology) -> RunResult {
        let mut sink = CollectSink::new();
        self.run_topology_with(topology, &mut sink);
        sink.into_run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DramIntegration, MultiCoreIntegration, SparsityMode};
    use crate::sink::RunSummary;
    use scalesim_multicore::{L2Config, PartitionGrid, PartitionScheme};
    use scalesim_sparse::NmRatio;
    use scalesim_systolic::{ArrayShape, Dataflow, MemoryConfig, SimConfig};

    fn small_core() -> SimConfig {
        let mut cfg = SimConfig::builder()
            .array(ArrayShape::new(8, 8))
            .dataflow(Dataflow::WeightStationary)
            .build();
        cfg.memory = MemoryConfig::from_kilobytes(16, 16, 8, 2);
        cfg
    }

    #[test]
    fn v2_parity_run() {
        let mut config = ScaleSimConfig::default();
        config.core = small_core();
        let sim = ScaleSim::new(config);
        let r = sim.run_gemm("g", GemmShape::new(32, 32, 32));
        assert!(r.dram.is_none() && r.layout.is_none() && r.energy.is_none());
        assert_eq!(r.total_cycles(), r.report.memory.total_cycles);
    }

    #[test]
    fn full_pipeline_produces_all_reports() {
        let mut config = ScaleSimConfig::full();
        config.core = small_core();
        config.dram = DramIntegration {
            channels: 2,
            ..Default::default()
        };
        let sim = ScaleSim::new(config);
        let r = sim.run_gemm("g", GemmShape::new(48, 48, 48));
        assert!(r.dram.is_some());
        assert!(r.layout.is_some());
        assert!(r.energy.is_some());
        let d = r.dram.as_ref().unwrap();
        assert!(d.stats.reads > 0);
        assert!(r.energy.as_ref().unwrap().total_pj() > 0.0);
    }

    #[test]
    fn sparsity_compresses_and_speeds_up() {
        let mut dense_cfg = ScaleSimConfig::default();
        dense_cfg.core = small_core();
        let dense = ScaleSim::new(dense_cfg.clone()).run_gemm("g", GemmShape::new(64, 64, 128));
        let mut sparse_cfg = dense_cfg;
        sparse_cfg.sparsity = Some(SparsityMode::LayerWise(NmRatio::new(1, 4).unwrap()));
        let sparse = ScaleSim::new(sparse_cfg).run_gemm("g", GemmShape::new(64, 64, 128));
        assert_eq!(sparse.gemm.k, 32, "1:4 compresses K to a quarter");
        assert!(sparse.total_cycles() < dense.total_cycles());
        let row = sparse.sparse.as_ref().unwrap();
        assert!(row.new_filter_bytes() < row.original_bytes);
    }

    #[test]
    fn multicore_reduces_latency_and_reports_noc() {
        let mut single = ScaleSimConfig::default();
        single.core = small_core();
        let r1 = ScaleSim::new(single.clone()).run_gemm("g", GemmShape::new(128, 128, 128));
        let mut multi = single;
        multi.multicore = Some(MultiCoreIntegration {
            grid: PartitionGrid::new(2, 2),
            scheme: PartitionScheme::Spatial,
            l2: Some(L2Config::default()),
        });
        let r4 = ScaleSim::new(multi).run_gemm("g", GemmShape::new(128, 128, 128));
        assert!(r4.report.compute.total_compute_cycles < r1.report.compute.total_compute_cycles);
        assert_eq!(r4.cores, 4);
        assert!(r4.noc_words > 0);
    }

    #[test]
    fn topology_run_sums_layers() {
        let mut config = ScaleSimConfig::default();
        config.core = small_core();
        let topo = Topology::from_layers(
            "t",
            vec![
                scalesim_systolic::Layer::gemm_layer("a", 16, 16, 16),
                scalesim_systolic::Layer::gemm_layer("b", 24, 24, 24),
            ],
        );
        let run = ScaleSim::new(config).run_topology(&topo);
        assert_eq!(run.layers.len(), 2);
        assert_eq!(
            run.total_cycles(),
            run.layers.iter().map(|l| l.total_cycles()).sum::<u64>()
        );
        assert!(run.compute_report_csv().contains("a,"));
    }

    #[test]
    fn energy_with_dram_uses_stall_aware_cycles() {
        let mut config = ScaleSimConfig::default();
        config.core = small_core();
        config.enable_energy = true;
        let no_dram = ScaleSim::new(config.clone()).run_gemm("g", GemmShape::new(64, 64, 64));
        config.enable_dram = true;
        let with_dram = ScaleSim::new(config).run_gemm("g", GemmShape::new(64, 64, 64));
        // DRAM stalls extend runtime → more leakage → at least as much energy.
        assert!(
            with_dram.energy.as_ref().unwrap().cycles()
                >= no_dram.energy.as_ref().unwrap().cycles()
        );
    }

    #[test]
    fn streaming_matches_collect_and_bounds_buffering() {
        let mut config = ScaleSimConfig::default();
        config.core = small_core();
        config.enable_energy = true;
        let layers: Vec<_> = (0..150)
            .map(|i| {
                scalesim_systolic::Layer::gemm_layer(
                    format!("l{i}"),
                    16 + (i % 3) * 8,
                    16,
                    16 + (i % 2) * 16,
                )
            })
            .collect();
        let topo = Topology::from_layers("t", layers);
        let sim = ScaleSim::new(config);
        let collected = sim.run_topology(&topo);
        let mut summary = RunSummary::new();
        let stats = sim.run_topology_with(&topo, &mut summary);
        assert_eq!(stats.layers, 150);
        assert!(
            stats.peak_buffered <= STREAM_BLOCK,
            "peak {} exceeds the block bound",
            stats.peak_buffered
        );
        assert_eq!(summary.total_cycles, collected.total_cycles());
        assert_eq!(summary.macs, collected.total_macs());
    }

    #[test]
    fn cancelled_topology_run_reports_deadline_and_a_live_token_matches_plain() {
        let mut config = ScaleSimConfig::default();
        config.core = small_core();
        let topo = Topology::from_layers(
            "t",
            vec![
                scalesim_systolic::Layer::gemm_layer("a", 16, 16, 16),
                scalesim_systolic::Layer::gemm_layer("b", 24, 24, 24),
            ],
        );
        let sim = ScaleSim::new(config);

        // An already-expired token abandons the run before any stage.
        let mut sink = CollectSink::new();
        let err = sim
            .run_topology_cancellable(&topo, &mut sink, &crate::cancel::CancelToken::after_ms(0))
            .unwrap_err();
        assert_eq!((err.kind(), err.exit_code()), ("deadline", 124));
        assert!(sink.into_run().layers.is_empty(), "no layer completes");

        // A generous token changes nothing: identical results to the
        // plain runner (the byte-determinism invariant for deadline'd
        // requests that finish in time).
        let mut sink = CollectSink::new();
        let stats = sim
            .run_topology_cancellable(
                &topo,
                &mut sink,
                &crate::cancel::CancelToken::after_ms(600_000),
            )
            .unwrap();
        assert_eq!(stats.layers, 2);
        let cancellable = sink.into_run();
        let plain = sim.run_topology(&topo);
        let digest = |run: &crate::result::RunResult| {
            run.layers
                .iter()
                .map(|l| (l.name.clone(), l.total_cycles()))
                .collect::<Vec<_>>()
        };
        assert_eq!(digest(&cancellable), digest(&plain));
    }

    #[test]
    fn stage_profiling_survives_shared_caches() {
        let mut config = ScaleSimConfig::default();
        config.core = small_core();
        let sim = ScaleSim::new(config).with_stage_profiling();
        assert!(sim.stage_profile().is_some());
        let shared = sim.with_plan_cache(Arc::new(PlanCache::new()));
        shared.run_gemm("g", GemmShape::new(16, 16, 16));
        let profile = shared.stage_profile().expect("still profiling");
        assert_eq!(profile[0].stage, "compute");
        assert_eq!(profile[0].calls, 1);
    }
}
