//! Streaming result consumption: the [`ResultSink`] trait and its
//! standard implementations.
//!
//! The engine pushes every finished [`LayerResult`] into a sink instead
//! of returning a grown vector, so long topologies (and whole sweep
//! grids) run with **bounded result memory**: only the in-flight block
//! of the worker pool is ever resident. The standard sinks:
//!
//! * [`CollectSink`] — in-memory collector producing a [`RunResult`]
//!   (the classic API; memory grows with layer count).
//! * [`RunSummary`] — O(1) accumulator of the run-level aggregates
//!   (cycles, utilization, energy, …); what the sweep executor uses.
//! * [`CsvReportSink`] — incremental report writer emitting the
//!   standard `*_REPORT.csv` files row by row, byte-identical to the
//!   batch emitters on [`RunResult`].
//!
//! ## Writing a new sink
//!
//! Implement [`ResultSink::layer`]; it receives each layer **in
//! topology order** and owns the result. Compose sinks by forwarding
//! (see the CLI's run sink, which tees into a [`RunSummary`] and a
//! [`CsvReportSink`]).

use crate::config::ScaleSimConfig;
use crate::result::{rows, LayerResult, RunResult};
use scalesim_energy::EnergyReport;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

/// Consumes finished layers as they stream out of the engine.
pub trait ResultSink {
    /// Accepts the next layer, in topology order.
    fn layer(&mut self, result: LayerResult);
}

/// Collects every layer into a [`RunResult`] (the non-streaming API).
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    layers: Vec<LayerResult>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected run.
    pub fn into_run(self) -> RunResult {
        RunResult {
            layers: self.layers,
        }
    }
}

impl ResultSink for CollectSink {
    fn layer(&mut self, result: LayerResult) {
        self.layers.push(result);
    }
}

/// O(1)-memory accumulator of a run's aggregate metrics.
///
/// Mirrors the reductions [`RunResult`] computes over its layer vector,
/// but without retaining the layers — the sweep executor summarizes
/// thousands-of-layer runs through this sink with constant memory.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Layers accumulated.
    pub layers: usize,
    /// Sum of per-layer end-to-end cycles (DRAM-aware when available).
    pub total_cycles: u64,
    /// Sum of stall-free compute cycles.
    pub compute_cycles: u64,
    /// Sum of stall cycles.
    pub stall_cycles: u64,
    /// MACs executed.
    pub macs: u64,
    /// Compute-cycle-weighted utilization numerator (see
    /// [`utilization`](Self::utilization)).
    pub util_weighted: f64,
    /// Component-wise merged energy report (empty when energy is off).
    pub energy: EnergyReport,
    /// L2→L1 NoC words.
    pub noc_words: u64,
}

impl Default for RunSummary {
    fn default() -> Self {
        Self {
            layers: 0,
            total_cycles: 0,
            compute_cycles: 0,
            stall_cycles: 0,
            macs: 0,
            util_weighted: 0.0,
            energy: EnergyReport::empty(),
            noc_words: 0,
        }
    }
}

impl RunSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one layer into the aggregates.
    pub fn add(&mut self, l: &LayerResult) {
        self.layers += 1;
        self.total_cycles += l.total_cycles();
        self.compute_cycles += l.report.compute.total_compute_cycles;
        self.stall_cycles += l.stall_cycles();
        self.macs += l.report.compute.macs;
        self.util_weighted +=
            l.report.compute.utilization * l.report.compute.total_compute_cycles as f64;
        if let Some(e) = &l.energy {
            self.energy.merge(e);
        }
        self.noc_words += l.noc_words;
    }

    /// Compute-cycle-weighted mean PE utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.compute_cycles == 0 {
            0.0
        } else {
            self.util_weighted / self.compute_cycles as f64
        }
    }

    /// Total energy in mJ (0.0 when energy estimation is off).
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Energy-delay product in `cycles × mJ`.
    pub fn edp_cycles_mj(&self) -> f64 {
        self.total_cycles as f64 * self.energy_mj()
    }
}

impl ResultSink for RunSummary {
    fn layer(&mut self, result: LayerResult) {
        self.add(&result);
    }
}

/// Which report files a [`CsvReportSink`] emits; derived from the
/// configuration so streaming runs create exactly the files the batch
/// path would (a feature that is off contributes no file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportSections {
    /// `COMPUTE_REPORT.csv` (always on).
    pub compute: bool,
    /// `BANDWIDTH_REPORT.csv` (always on).
    pub bandwidth: bool,
    /// `SPARSE_REPORT.csv` (sparsity runs only).
    pub sparse: bool,
    /// `ENERGY_REPORT.csv` (energy estimation on).
    pub energy: bool,
    /// `DRAM_REPORT.csv` (cycle-accurate DRAM flow on).
    pub dram: bool,
}

impl ReportSections {
    /// The sections `config` produces rows for.
    pub fn for_config(config: &ScaleSimConfig) -> Self {
        Self {
            compute: true,
            bandwidth: true,
            sparse: config.sparsity.is_some(),
            energy: config.enable_energy,
            dram: config.enable_dram,
        }
    }
}

/// One lazily-opened report file.
struct SectionFile {
    file_name: &'static str,
    header: &'static str,
    writer: Option<BufWriter<File>>,
}

impl SectionFile {
    fn new(file_name: &'static str, header: &'static str) -> Self {
        Self {
            file_name,
            header,
            writer: None,
        }
    }
}

/// Streams the standard report CSVs to `out_dir` as layers arrive.
///
/// Rows are produced by the same formatters ([`rows`]) the batch
/// emitters on [`RunResult`] use, so for a given run the files are
/// byte-identical to `RunResult::*_report_csv()` — just written
/// incrementally with O(1) buffering. Feature-gated sections are
/// created lazily on their first row (matching the batch path, which
/// skips empty reports); the always-on compute/bandwidth files are
/// guaranteed by [`finish`](Self::finish) even for a zero-layer run
/// (header only, as the batch emitters produce). I/O errors are
/// latched and surfaced by `finish`.
pub struct CsvReportSink {
    out_dir: PathBuf,
    sections: Vec<SectionFile>,
    emit: ReportSections,
    error: Option<String>,
}

impl CsvReportSink {
    /// A sink writing the sections enabled by `sections` into `out_dir`
    /// (which must already exist).
    pub fn new(out_dir: impl Into<PathBuf>, sections: ReportSections) -> Self {
        // Emission order mirrors the CLI's historical order.
        let files = vec![
            SectionFile::new("COMPUTE_REPORT.csv", rows::COMPUTE_HEADER),
            SectionFile::new("BANDWIDTH_REPORT.csv", rows::BANDWIDTH_HEADER),
            SectionFile::new("SPARSE_REPORT.csv", rows::SPARSE_HEADER),
            SectionFile::new("ENERGY_REPORT.csv", rows::ENERGY_HEADER),
            SectionFile::new("DRAM_REPORT.csv", rows::DRAM_HEADER),
        ];
        Self {
            out_dir: out_dir.into(),
            sections: files,
            emit: sections,
            error: None,
        }
    }

    /// Opens the section's file and writes its header, once.
    fn ensure_open(&mut self, index: usize) {
        if self.error.is_some() || self.sections[index].writer.is_some() {
            return;
        }
        let section = &mut self.sections[index];
        let path = self.out_dir.join(section.file_name);
        match File::create(&path) {
            Ok(f) => {
                let mut w = BufWriter::new(f);
                if let Err(e) = w.write_all(section.header.as_bytes()) {
                    self.error = Some(format!("write {}: {e}", path.display()));
                    return;
                }
                section.writer = Some(w);
            }
            Err(e) => {
                self.error = Some(format!("create {}: {e}", path.display()));
            }
        }
    }

    fn write_row(&mut self, index: usize, row: &str) {
        self.ensure_open(index);
        if self.error.is_some() {
            return;
        }
        let section = &mut self.sections[index];
        let file_name = section.file_name;
        if let Err(e) = section
            .writer
            .as_mut()
            .expect("writer opened above")
            .write_all(row.as_bytes())
        {
            self.error = Some(format!("write {file_name}: {e}"));
        }
    }

    /// Flushes all writers, returning the paths written (in emission
    /// order) or the first I/O error.
    pub fn finish(mut self) -> Result<Vec<PathBuf>, String> {
        // The batch emitters always produce the compute and bandwidth
        // reports (header-only for a zero-layer run); match them even if
        // no layer ever arrived.
        if self.emit.compute {
            self.ensure_open(0);
        }
        if self.emit.bandwidth {
            self.ensure_open(1);
        }
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut written = Vec::new();
        for section in &mut self.sections {
            if let Some(w) = section.writer.as_mut() {
                let path = self.out_dir.join(section.file_name);
                w.flush()
                    .map_err(|e| format!("flush {}: {e}", path.display()))?;
                written.push(path);
            }
        }
        Ok(written)
    }
}

/// Streams the standard report CSVs into in-memory strings — the
/// [`CsvReportSink`] twin used by the request/response facade, where
/// reports travel inside a [`SimResponse`](scalesim_api::SimResponse)
/// instead of landing on disk.
///
/// Rows come from the same formatters ([`rows`]) as every other
/// emitter, and the same lazy-section policy applies: an enabled
/// feature that never produced a row contributes no report, while the
/// always-on compute/bandwidth reports are emitted even for a
/// zero-layer run (header only). The produced strings are therefore
/// **byte-identical** to the files the CLI writes for the same run —
/// the property the serve-mode golden tests pin.
pub struct MemoryReportSink {
    /// `(file name, content)` per section; optional sections stay empty
    /// until their first row.
    sections: Vec<(&'static str, &'static str, String)>,
    emit: ReportSections,
}

impl MemoryReportSink {
    /// A sink collecting the sections enabled by `sections`.
    pub fn new(sections: ReportSections) -> Self {
        let files = vec![
            ("COMPUTE_REPORT.csv", rows::COMPUTE_HEADER, String::new()),
            (
                "BANDWIDTH_REPORT.csv",
                rows::BANDWIDTH_HEADER,
                String::new(),
            ),
            ("SPARSE_REPORT.csv", rows::SPARSE_HEADER, String::new()),
            ("ENERGY_REPORT.csv", rows::ENERGY_HEADER, String::new()),
            ("DRAM_REPORT.csv", rows::DRAM_HEADER, String::new()),
        ];
        Self {
            sections: files,
            emit: sections,
        }
    }

    fn push_row(&mut self, index: usize, row: &str) {
        let (_, header, content) = &mut self.sections[index];
        if content.is_empty() {
            content.push_str(header);
        }
        content.push_str(row);
    }

    /// The collected reports as `(file name, content)` pairs, in the
    /// CLI's emission order — exactly the files a [`CsvReportSink`]
    /// would have created for the same run.
    pub fn finish(mut self) -> Vec<(&'static str, String)> {
        // The always-on sections exist even with zero rows.
        for index in [0, 1] {
            let enabled = if index == 0 {
                self.emit.compute
            } else {
                self.emit.bandwidth
            };
            if enabled && self.sections[index].2.is_empty() {
                let header = self.sections[index].1;
                self.sections[index].2.push_str(header);
            }
        }
        self.sections
            .into_iter()
            .filter(|(_, _, content)| !content.is_empty())
            .map(|(name, _, content)| (name, content))
            .collect()
    }
}

impl ResultSink for MemoryReportSink {
    fn layer(&mut self, result: LayerResult) {
        if self.emit.compute {
            self.push_row(0, &rows::compute(&result));
        }
        if self.emit.bandwidth {
            self.push_row(1, &rows::bandwidth(&result));
        }
        if self.emit.sparse {
            if let Some(row) = rows::sparse(&result) {
                self.push_row(2, &row);
            }
        }
        if self.emit.energy {
            if let Some(row) = rows::energy(&result) {
                self.push_row(3, &row);
            }
        }
        if self.emit.dram {
            if let Some(row) = rows::dram(&result) {
                self.push_row(4, &row);
            }
        }
    }
}

impl ResultSink for CsvReportSink {
    fn layer(&mut self, result: LayerResult) {
        if self.emit.compute {
            self.write_row(0, &rows::compute(&result));
        }
        if self.emit.bandwidth {
            self.write_row(1, &rows::bandwidth(&result));
        }
        if self.emit.sparse {
            if let Some(row) = rows::sparse(&result) {
                self.write_row(2, &row);
            }
        }
        if self.emit.energy {
            if let Some(row) = rows::energy(&result) {
                self.write_row(3, &row);
            }
        }
        if self.emit.dram {
            if let Some(row) = rows::dram(&result) {
                self.write_row(4, &row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScaleSim;
    use scalesim_systolic::{ArrayShape, Layer, MemoryConfig, Topology};

    fn config() -> ScaleSimConfig {
        let mut config = ScaleSimConfig::default();
        config.core.array = ArrayShape::new(8, 8);
        config.core.memory = MemoryConfig::from_kilobytes(16, 16, 8, 2);
        config.enable_energy = true;
        config
    }

    fn topo() -> Topology {
        Topology::from_layers(
            "t",
            vec![
                Layer::gemm_layer("a", 16, 16, 16),
                Layer::gemm_layer("b", 24, 24, 24),
                Layer::gemm_layer("c", 32, 16, 8),
            ],
        )
    }

    #[test]
    fn summary_matches_run_result_reductions() {
        let sim = ScaleSim::new(config());
        let run = sim.run_topology(&topo());
        let mut summary = RunSummary::new();
        for l in &run.layers {
            summary.add(l);
        }
        assert_eq!(summary.layers, 3);
        assert_eq!(summary.total_cycles, run.total_cycles());
        assert_eq!(summary.compute_cycles, run.total_compute_cycles());
        assert_eq!(summary.stall_cycles, run.total_stall_cycles());
        assert_eq!(summary.macs, run.total_macs());
        assert!(summary.energy_mj() > 0.0);
    }

    #[test]
    fn csv_sink_matches_batch_emitters_for_zero_layers() {
        let dir = std::env::temp_dir().join(format!("scalesim-sink0-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sink = CsvReportSink::new(&dir, ReportSections::for_config(&config()));
        let written = sink.finish().unwrap();
        assert_eq!(written.len(), 2, "header-only compute + bandwidth");
        let empty = RunResult::default();
        let read = |name: &str| std::fs::read_to_string(dir.join(name)).unwrap();
        assert_eq!(read("COMPUTE_REPORT.csv"), empty.compute_report_csv());
        assert_eq!(read("BANDWIDTH_REPORT.csv"), empty.bandwidth_report_csv());
        assert!(!dir.join("ENERGY_REPORT.csv").exists(), "no rows, no file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_sink_matches_batch_emitters() {
        let dir = std::env::temp_dir().join(format!("scalesim-sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sim = ScaleSim::new(config());
        let run = sim.run_topology(&topo());
        let mut sink = CsvReportSink::new(&dir, ReportSections::for_config(sim.config()));
        for l in &run.layers {
            sink.layer(l.clone());
        }
        let written = sink.finish().unwrap();
        assert_eq!(written.len(), 3, "compute + bandwidth + energy");
        let read = |name: &str| std::fs::read_to_string(dir.join(name)).unwrap();
        assert_eq!(read("COMPUTE_REPORT.csv"), run.compute_report_csv());
        assert_eq!(read("BANDWIDTH_REPORT.csv"), run.bandwidth_report_csv());
        assert_eq!(read("ENERGY_REPORT.csv"), run.energy_report_csv());
        assert!(!dir.join("SPARSE_REPORT.csv").exists(), "dense run");
        assert!(!dir.join("DRAM_REPORT.csv").exists(), "no dram flow");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
