//! Multi-chip scale-out execution: runs a topology across a fleet of
//! accelerators under a parallelization strategy, merging per-chip
//! compute (the existing [`ScaleSim`] engine) with collective
//! communication (the `scalesim-collective` models) on an overlap
//! timeline.
//!
//! The key property the implementation leans on: the strategies are
//! **symmetric** — every chip of a data- or tensor-parallel system runs
//! the *same* GEMM shard — so one per-layer simulation covers the whole
//! fleet, and repeated shapes hit the shared [`PlanCache`] exactly like
//! single-chip runs do (`scalesim serve` keeps plans warm across
//! scale-out requests too). Pipeline parallelism runs every full layer
//! once and schedules the stages analytically.
//!
//! Execution streams: shard compute runs through
//! [`ScaleSim::run_topology_with`] — nested layer tasks of the shared
//! work-stealing scheduler, not a second pool (deterministic for any
//! `SCALESIM_THREADS`) — each finished layer is joined with its
//! collective cost in the [`OverlapTimeline`] (one-layer lookahead, so
//! O(1) buffered state), and every resolved row is pushed into a
//! [`ScaleoutSink`] — the CSV file writer, the in-memory twin the serve
//! mode uses, or a collector.
//!
//! [`PlanCache`]: scalesim_systolic::PlanCache

use crate::engine::ScaleSim;
use crate::result::LayerResult;
use crate::sink::ResultSink;
use scalesim_collective::{
    collectives, partition_stages, pipeline_total_cycles, shard_layer, CollectiveCost, Fabric,
    OverlapTimeline, ScaleoutSpec, Strategy,
};
use scalesim_systolic::{GemmShape, Layer, Topology};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

/// One layer of a scale-out run: the shard every chip executed, its
/// compute cost, and the overlap-split collective that closed it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleoutLayerRecord {
    /// Layer name.
    pub name: String,
    /// Pipeline stage (0 for data/tensor parallelism).
    pub stage: usize,
    /// The GEMM each chip ran.
    pub shard: GemmShape,
    /// Collective kind tag (`allreduce` / `allgather` / `reducescatter`
    /// / `p2p` / `none`).
    pub comm_kind: &'static str,
    /// Per-chip compute cycles of the shard (memory-aware total).
    pub compute_cycles: u64,
    /// Collective cost of the layer, cycles.
    pub comm_cycles: u64,
    /// Communication hidden under the next layer's compute.
    pub overlapped_cycles: u64,
    /// Communication left on the critical path.
    pub exposed_cycles: u64,
    /// PE utilization of the shard's compute in `[0, 1]`.
    pub utilization: f64,
}

impl ScaleoutLayerRecord {
    /// The layer's critical-path contribution: compute plus exposed
    /// communication.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.exposed_cycles
    }
}

/// Per-layer CSV row formatting of `SCALEOUT_REPORT.csv` — one source
/// of truth shared by the file sink and the in-memory sink, which is
/// what makes serve-mode report bytes identical to the CLI's file.
pub mod scaleout_rows {
    use super::ScaleoutLayerRecord;

    /// `SCALEOUT_REPORT.csv` header.
    pub const SCALEOUT_HEADER: &str = "LayerName, Stage, ShardM, ShardN, ShardK, \
         ComputeCycles, CommKind, CommCycles, OverlappedCycles, ExposedCycles, \
         TotalCycles, Utilization\n";

    /// One `SCALEOUT_REPORT.csv` row.
    pub fn scaleout(r: &ScaleoutLayerRecord) -> String {
        format!(
            "{}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {:.4}\n",
            r.name,
            r.stage,
            r.shard.m,
            r.shard.n,
            r.shard.k,
            r.compute_cycles,
            r.comm_kind,
            r.comm_cycles,
            r.overlapped_cycles,
            r.exposed_cycles,
            r.total_cycles(),
            r.utilization,
        )
    }
}

/// Consumes scale-out layer records as they resolve, in layer order.
pub trait ScaleoutSink {
    /// Accepts the next resolved layer.
    fn layer(&mut self, record: ScaleoutLayerRecord);
}

/// Collects every record (tests and small tools).
#[derive(Debug, Clone, Default)]
pub struct CollectScaleoutSink {
    /// The records, in layer order.
    pub records: Vec<ScaleoutLayerRecord>,
}

impl ScaleoutSink for CollectScaleoutSink {
    fn layer(&mut self, record: ScaleoutLayerRecord) {
        self.records.push(record);
    }
}

/// Streams `SCALEOUT_REPORT.csv` to a directory row by row (the
/// scale-out twin of [`crate::sink::CsvReportSink`]): header on
/// creation, O(1) buffering, I/O errors latched and surfaced by
/// [`finish`](Self::finish).
pub struct ScaleoutCsvSink {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    error: Option<String>,
}

impl ScaleoutCsvSink {
    /// Creates `SCALEOUT_REPORT.csv` in `out_dir` (which must exist)
    /// and writes the header.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        let path = out_dir.into().join("SCALEOUT_REPORT.csv");
        let (writer, error) = match File::create(&path) {
            Ok(f) => {
                let mut w = BufWriter::new(f);
                match w.write_all(scaleout_rows::SCALEOUT_HEADER.as_bytes()) {
                    Ok(()) => (Some(w), None),
                    Err(e) => (None, Some(format!("write {}: {e}", path.display()))),
                }
            }
            Err(e) => (None, Some(format!("create {}: {e}", path.display()))),
        };
        Self {
            path,
            writer,
            error,
        }
    }

    /// Flushes, returning the written path or the first I/O error.
    pub fn finish(mut self) -> Result<PathBuf, String> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if let Some(w) = self.writer.as_mut() {
            w.flush()
                .map_err(|e| format!("flush {}: {e}", self.path.display()))?;
        }
        Ok(self.path)
    }
}

impl ScaleoutSink for ScaleoutCsvSink {
    fn layer(&mut self, record: ScaleoutLayerRecord) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.write_all(scaleout_rows::scaleout(&record).as_bytes()) {
                self.error = Some(format!("write {}: {e}", self.path.display()));
            }
        }
    }
}

/// Collects `SCALEOUT_REPORT.csv` into a string — what the
/// request/response facade embeds in a
/// [`SimResponse`](scalesim_api::SimResponse). Byte-identical to the
/// file [`ScaleoutCsvSink`] writes for the same run.
#[derive(Debug, Clone)]
pub struct MemoryScaleoutSink {
    content: String,
}

impl Default for MemoryScaleoutSink {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryScaleoutSink {
    /// An empty report (header only until rows arrive).
    pub fn new() -> Self {
        Self {
            content: scaleout_rows::SCALEOUT_HEADER.to_string(),
        }
    }

    /// The collected report bytes.
    pub fn finish(self) -> String {
        self.content
    }
}

impl ScaleoutSink for MemoryScaleoutSink {
    fn layer(&mut self, record: ScaleoutLayerRecord) {
        self.content.push_str(&scaleout_rows::scaleout(&record));
    }
}

/// Discards records (the sweep executor only needs the summary).
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscardScaleoutSink;

impl ScaleoutSink for DiscardScaleoutSink {
    fn layer(&mut self, _record: ScaleoutLayerRecord) {}
}

/// Run-level aggregates of a scale-out execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleoutSummary {
    /// Chips in the system.
    pub chips: usize,
    /// The strategy that ran.
    pub strategy: Strategy,
    /// Human-readable fabric description.
    pub fabric: String,
    /// Layers executed.
    pub layers: usize,
    /// Pipeline stages used (1 for data/tensor parallelism).
    pub stages: usize,
    /// MACs of the simulated shards (one shard per layer): per-chip
    /// work under data/tensor parallelism (every chip runs the same
    /// shard), the **whole pass** under pipeline parallelism (each
    /// chip runs only its stage's layers).
    pub simulated_macs: u64,
    /// Per-chip compute cycles (sum of shard totals).
    pub compute_cycles: u64,
    /// Collective cycles obligated across all layers.
    pub comm_cycles: u64,
    /// Communication hidden under compute.
    pub overlapped_cycles: u64,
    /// Communication on the critical path.
    pub exposed_cycles: u64,
    /// Pipeline fill/drain overhead versus perfect parallelism
    /// (0 for data/tensor parallelism).
    pub bubble_cycles: u64,
    /// End-to-end critical-path cycles.
    pub total_cycles: u64,
    /// Energy of the simulated shards in mJ (0.0 when energy
    /// estimation is off): per-chip under data/tensor parallelism,
    /// whole-pass under pipeline parallelism (see
    /// [`fleet_energy_mj`](Self::fleet_energy_mj)).
    pub simulated_energy_mj: f64,
    /// L2→L1 NoC words of the per-chip runs (multi-core chips only).
    pub noc_words: u64,
    util_weighted: f64,
    util_cycles: u64,
}

impl ScaleoutSummary {
    /// Compute-cycle-weighted mean PE utilization of the shards.
    pub fn utilization(&self) -> f64 {
        if self.util_cycles == 0 {
            0.0
        } else {
            self.util_weighted / self.util_cycles as f64
        }
    }

    /// Total energy the fleet burns for one pass, in mJ: under
    /// data/tensor parallelism every chip executes the simulated
    /// shard, so the per-chip energy scales by the chip count; under
    /// pipeline parallelism the simulated layers *are* the whole
    /// fleet's work (each chip runs only its stage).
    pub fn fleet_energy_mj(&self) -> f64 {
        match self.strategy {
            Strategy::PipelineParallel => self.simulated_energy_mj,
            _ => self.simulated_energy_mj * self.chips as f64,
        }
    }

    /// Fraction of the critical path spent in exposed communication
    /// (plus the pipeline bubble), in `[0, 1]`.
    pub fn comm_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            (self.exposed_cycles + self.bubble_cycles) as f64 / self.total_cycles as f64
        }
    }
}

/// One layer's static plan: the shard, its stage, and the collective it
/// obligates.
struct PlannedScaleoutLayer {
    stage: usize,
    shard: GemmShape,
    comm: CollectiveCost,
    comm_kind: &'static str,
}

fn plan_layers(
    topology: &Topology,
    spec: &ScaleoutSpec,
    fabric: &Fabric,
    bytes_per_word: usize,
) -> Vec<PlannedScaleoutLayer> {
    match spec.strategy {
        Strategy::DataParallel | Strategy::TensorParallel => topology
            .layers()
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                let plan = shard_layer(spec.strategy, fabric, i, layer.gemm(), bytes_per_word);
                PlannedScaleoutLayer {
                    stage: 0,
                    shard: plan.shard,
                    comm: plan.comm,
                    comm_kind: plan.comm_kind,
                }
            })
            .collect(),
        Strategy::PipelineParallel => {
            let weights: Vec<u64> = topology.layers().iter().map(|l| l.gemm().macs()).collect();
            let stages = partition_stages(&weights, fabric.chips());
            topology
                .layers()
                .iter()
                .enumerate()
                .map(|(i, layer)| {
                    let gemm = layer.gemm();
                    // A stage's last layer ships its activations to the
                    // next chip (the final stage keeps its outputs).
                    let boundary = stages.get(i + 1).is_some_and(|&next| next != stages[i]);
                    let (comm, comm_kind) = if boundary && fabric.chips() > 1 {
                        (
                            collectives::point_to_point(
                                fabric,
                                (gemm.m * gemm.n) as u64 * bytes_per_word as u64,
                            ),
                            "p2p",
                        )
                    } else {
                        (CollectiveCost::FREE, "none")
                    };
                    PlannedScaleoutLayer {
                        stage: stages[i],
                        shard: gemm,
                        comm,
                        comm_kind,
                    }
                })
                .collect()
        }
    }
}

/// Joins streamed per-shard compute results with the planned collective
/// costs on the overlap timeline, emitting resolved records downstream.
struct JoinSink<'a> {
    plans: &'a [PlannedScaleoutLayer],
    timeline: OverlapTimeline,
    pending: Option<ScaleoutLayerRecord>,
    next: usize,
    out: &'a mut dyn ScaleoutSink,
    stage_cycles: Vec<u64>,
    macs: u64,
    energy_mj: f64,
    noc_words: u64,
    util_weighted: f64,
    util_cycles: u64,
}

impl JoinSink<'_> {
    fn resolve(&mut self, split: scalesim_collective::OverlapSplit) {
        let mut record = self.pending.take().expect("a pending layer to resolve");
        record.overlapped_cycles = split.overlapped;
        record.exposed_cycles = split.exposed;
        scalesim_obs::instant(
            scalesim_obs::Category::Collective,
            "overlap-window",
            &[
                ("overlapped_cycles", split.overlapped),
                ("exposed_cycles", split.exposed),
            ],
        );
        if let Some(slot) = self.stage_cycles.get_mut(record.stage) {
            *slot += record.total_cycles();
        }
        self.out.layer(record);
    }
}

impl ResultSink for JoinSink<'_> {
    fn layer(&mut self, result: LayerResult) {
        let plan = &self.plans[self.next];
        self.next += 1;
        let compute = result.total_cycles();
        self.macs += result.report.compute.macs;
        self.noc_words += result.noc_words;
        if let Some(e) = &result.energy {
            self.energy_mj += e.total_mj();
        }
        let weight = result.report.compute.total_compute_cycles;
        self.util_weighted += result.report.compute.utilization * weight as f64;
        self.util_cycles += weight;
        if let Some(split) = self.timeline.push(compute, plan.comm.cycles) {
            self.resolve(split);
        }
        self.pending = Some(ScaleoutLayerRecord {
            name: result.name,
            stage: plan.stage,
            shard: plan.shard,
            comm_kind: plan.comm_kind,
            compute_cycles: compute,
            comm_cycles: plan.comm.cycles,
            overlapped_cycles: 0,
            exposed_cycles: 0,
            utilization: result.report.compute.utilization,
        });
    }
}

/// Executes `topology` across the multi-chip system `spec` describes,
/// streaming per-layer records into `sink` and returning the run-level
/// summary.
///
/// Per-shard compute runs through `sim` — and therefore through its
/// (possibly shared) plan cache — with the usual determinism guarantee:
/// records and report bytes are identical for any `SCALESIM_THREADS`.
///
/// # Errors
///
/// Returns a message naming the problem when the spec's fabric is
/// inconsistent (see [`ScaleoutSpec::fabric`]).
pub fn run_scaleout(
    sim: &ScaleSim,
    topology: &Topology,
    spec: &ScaleoutSpec,
    sink: &mut dyn ScaleoutSink,
) -> Result<ScaleoutSummary, String> {
    let fabric = spec.fabric()?;
    let bytes_per_word = sim.config().core.memory.bytes_per_word;
    let plans = plan_layers(topology, spec, &fabric, bytes_per_word);
    let stages = plans.last().map_or(1, |p| p.stage + 1);

    let shard_topology = Topology::from_layers(
        topology.name(),
        topology
            .layers()
            .iter()
            .zip(&plans)
            .map(|(layer, plan)| {
                Layer::gemm_layer(layer.name(), plan.shard.m, plan.shard.n, plan.shard.k)
            })
            .collect(),
    );

    let mut join = JoinSink {
        plans: &plans,
        timeline: OverlapTimeline::new(),
        pending: None,
        next: 0,
        out: sink,
        stage_cycles: vec![0; stages],
        macs: 0,
        energy_mj: 0.0,
        noc_words: 0,
        util_weighted: 0.0,
        util_cycles: 0,
    };
    sim.run_topology_with(&shard_topology, &mut join);
    if let Some(split) = join.timeline.finish() {
        join.resolve(split);
    }

    let (total_cycles, bubble_cycles) = match spec.strategy {
        Strategy::PipelineParallel => {
            let total = pipeline_total_cycles(&join.stage_cycles, spec.microbatches);
            let work: u64 = join.stage_cycles.iter().sum();
            let ideal = work.div_ceil(fabric.chips() as u64);
            (total, total.saturating_sub(ideal))
        }
        _ => (join.timeline.total_cycles(), 0),
    };

    Ok(ScaleoutSummary {
        chips: fabric.chips(),
        strategy: spec.strategy,
        fabric: fabric.to_string(),
        layers: topology.len(),
        stages,
        simulated_macs: join.macs,
        compute_cycles: join.timeline.compute_total(),
        comm_cycles: join.timeline.comm_total(),
        overlapped_cycles: join.timeline.overlapped_total(),
        exposed_cycles: join.timeline.exposed_total(),
        bubble_cycles,
        total_cycles,
        simulated_energy_mj: join.energy_mj,
        noc_words: join.noc_words,
        util_weighted: join.util_weighted,
        util_cycles: join.util_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScaleSimConfig;
    use scalesim_collective::FabricTag;
    use scalesim_systolic::{ArrayShape, MemoryConfig};

    fn sim() -> ScaleSim {
        let mut config = ScaleSimConfig::default();
        config.core.array = ArrayShape::new(8, 8);
        config.core.memory = MemoryConfig::from_kilobytes(16, 16, 8, 2);
        ScaleSim::new(config)
    }

    fn topo() -> Topology {
        Topology::from_layers(
            "t",
            vec![
                Layer::gemm_layer("a", 64, 48, 32),
                Layer::gemm_layer("b", 64, 64, 48),
                Layer::gemm_layer("c", 32, 96, 64),
                Layer::gemm_layer("d", 96, 32, 32),
            ],
        )
    }

    fn spec(strategy: Strategy, chips: usize) -> ScaleoutSpec {
        ScaleoutSpec {
            chips,
            strategy,
            ..Default::default()
        }
    }

    #[test]
    fn data_parallel_shards_m_and_exposes_the_last_allreduce() {
        let mut sink = CollectScaleoutSink::default();
        let summary =
            run_scaleout(&sim(), &topo(), &spec(Strategy::DataParallel, 8), &mut sink).unwrap();
        assert_eq!(summary.chips, 8);
        assert_eq!(summary.layers, 4);
        assert_eq!(sink.records.len(), 4);
        for r in &sink.records {
            assert_eq!(r.comm_kind, "allreduce");
            assert!(r.comm_cycles > 0);
        }
        // M shards to ceil(M / 8); N and K stay whole.
        assert_eq!(sink.records[0].shard, GemmShape::new(8, 48, 32));
        // The final layer has no window to hide its all-reduce.
        let last = sink.records.last().unwrap();
        assert_eq!(last.overlapped_cycles, 0);
        assert_eq!(last.exposed_cycles, last.comm_cycles);
        assert_eq!(
            summary.total_cycles,
            summary.compute_cycles + summary.exposed_cycles
        );
        assert_eq!(
            summary.overlapped_cycles + summary.exposed_cycles,
            summary.comm_cycles
        );
    }

    #[test]
    fn tensor_parallel_alternates_collectives() {
        let mut sink = CollectScaleoutSink::default();
        run_scaleout(
            &sim(),
            &topo(),
            &spec(Strategy::TensorParallel, 4),
            &mut sink,
        )
        .unwrap();
        let kinds: Vec<_> = sink.records.iter().map(|r| r.comm_kind).collect();
        assert_eq!(
            kinds,
            ["allgather", "reducescatter", "allgather", "reducescatter"]
        );
        assert_eq!(sink.records[0].shard, GemmShape::new(64, 12, 32));
        assert_eq!(sink.records[1].shard, GemmShape::new(64, 64, 12));
    }

    #[test]
    fn pipeline_parallel_partitions_stages_and_adds_a_bubble() {
        let mut sink = CollectScaleoutSink::default();
        let summary = run_scaleout(
            &sim(),
            &topo(),
            &spec(Strategy::PipelineParallel, 4),
            &mut sink,
        )
        .unwrap();
        assert_eq!(summary.stages, 4);
        let stages: Vec<_> = sink.records.iter().map(|r| r.stage).collect();
        assert_eq!(stages, [0, 1, 2, 3]);
        // Every boundary layer ships activations; the final stage keeps
        // its outputs.
        let kinds: Vec<_> = sink.records.iter().map(|r| r.comm_kind).collect();
        assert_eq!(kinds, ["p2p", "p2p", "p2p", "none"]);
        assert!(summary.bubble_cycles > 0);
        // Full layers run unsharded.
        assert_eq!(sink.records[0].shard, GemmShape::new(64, 48, 32));
    }

    #[test]
    fn single_chip_degenerates_to_a_plain_run() {
        let s = sim();
        let mut sink = CollectScaleoutSink::default();
        let summary =
            run_scaleout(&s, &topo(), &spec(Strategy::DataParallel, 1), &mut sink).unwrap();
        assert_eq!(summary.comm_cycles, 0);
        assert_eq!(summary.exposed_cycles, 0);
        let plain = s.run_topology(&topo());
        assert_eq!(summary.total_cycles, plain.total_cycles());
        assert_eq!(summary.simulated_macs, plain.total_macs());
    }

    #[test]
    fn more_chips_shrink_compute_but_grow_comm() {
        let s = sim();
        let mut a = DiscardScaleoutSink;
        let two = run_scaleout(&s, &topo(), &spec(Strategy::DataParallel, 2), &mut a).unwrap();
        let sixteen = run_scaleout(&s, &topo(), &spec(Strategy::DataParallel, 16), &mut a).unwrap();
        assert!(sixteen.compute_cycles < two.compute_cycles);
        assert!(sixteen.comm_cycles > two.comm_cycles);
    }

    #[test]
    fn mesh_fabric_runs_and_labels_itself() {
        let mut sink = CollectScaleoutSink::default();
        let mut sp = spec(Strategy::TensorParallel, 8);
        sp.fabric = FabricTag::Mesh;
        let summary = run_scaleout(&sim(), &topo(), &sp, &mut sink).unwrap();
        assert!(summary.fabric.starts_with("mesh2x4"), "{}", summary.fabric);
    }

    #[test]
    fn bad_fabric_is_a_named_error() {
        let mut sp = spec(Strategy::DataParallel, 6);
        sp.fabric = FabricTag::Switch;
        let err = run_scaleout(&sim(), &topo(), &sp, &mut DiscardScaleoutSink).unwrap_err();
        assert!(err.contains("power-of-two"), "{err}");
    }

    #[test]
    fn memory_sink_matches_csv_sink_bytes() {
        let dir = std::env::temp_dir().join(format!("scalesim-so-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let s = sim();
        let mut file_sink = ScaleoutCsvSink::new(&dir);
        run_scaleout(
            &s,
            &topo(),
            &spec(Strategy::DataParallel, 8),
            &mut file_sink,
        )
        .unwrap();
        let path = file_sink.finish().unwrap();
        let mut mem_sink = MemoryScaleoutSink::new();
        run_scaleout(&s, &topo(), &spec(Strategy::DataParallel, 8), &mut mem_sink).unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), mem_sink.finish());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
