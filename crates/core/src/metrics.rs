//! Lock-free serving metrics: request counters and a handle-latency
//! histogram, snapshotted by the `stats` request.
//!
//! Everything here is plain atomics — recording a latency or bumping a
//! counter never takes a lock, so metrics stay truthful under the exact
//! saturation conditions they exist to diagnose. The histogram is the
//! observability crate's [`scalesim_obs::Histogram`] (re-exported here
//! as [`LatencyHistogram`]): 64 power-of-two-microsecond buckets where
//! bucket *i* counts latencies in `[2^(i-1), 2^i)` µs, with percentile
//! reads linearly interpolated *within* the winning bucket and clamped
//! to the observed maximum — so a `stats` p50/p99 is a value inside
//! the distribution, not a bucket upper bound.

use std::sync::atomic::{AtomicU64, Ordering};

/// The handle-latency histogram type: power-of-two-µs buckets with
/// bucket-interpolated percentiles, shared with the process metric
/// registry so `stats` and Prometheus exposition read the same data.
pub use scalesim_obs::Histogram as LatencyHistogram;

/// Cumulative request counters for one serving process.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests received (decoded lines, queued or answered inline —
    /// including shed ones).
    pub requests_total: AtomicU64,
    /// Requests fully handled (ok or typed error written).
    pub completed: AtomicU64,
    /// Requests shed with `busy` (queue full or session cap).
    pub shed: AtomicU64,
    /// Requests that returned a `deadline` error.
    pub deadline_expired: AtomicU64,
    /// Requests currently queued or executing.
    pub in_flight: AtomicU64,
    /// Handle-latency histogram (decode→encode wall time).
    pub latency: LatencyHistogram,
}

impl ServeMetrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps a counter by one.
    pub fn inc(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements `in_flight` (saturating — a stray double-decrement
    /// must not wrap the gauge to u64::MAX).
    pub fn dec_in_flight(&self) {
        let _ = self
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Reads a counter.
    pub fn get(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_us(), 0);
        assert_eq!(h.percentile_us(50.0), 0);
        assert_eq!(h.percentile_us(99.0), 0);
    }

    #[test]
    fn percentiles_interpolate_within_the_bucket() {
        let h = LatencyHistogram::new();
        // 99 fast observations and one slow outlier.
        for _ in 0..99 {
            h.record_us(100); // bucket [64, 128)
        }
        h.record_us(1_000_000); // ~2^20 µs
        assert_eq!(h.count(), 100);
        assert_eq!(h.max_us(), 1_000_000);
        // Rank 50 of 99 in [64, 128) interpolates inside the bucket,
        // not to the 128 upper bound.
        assert_eq!(h.percentile_us(50.0), 96);
        assert_eq!(h.percentile_us(99.0), 127);
        // The top rank is the observed maximum itself.
        assert_eq!(h.percentile_us(100.0), 1_000_000);
    }

    #[test]
    fn zero_and_huge_latencies_do_not_panic() {
        let h = LatencyHistogram::new();
        h.record_us(0);
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(
            h.percentile_us(50.0),
            0,
            "0 µs interpolates inside the < 1 µs bucket"
        );
    }

    #[test]
    fn in_flight_never_wraps() {
        let m = ServeMetrics::new();
        m.dec_in_flight();
        assert_eq!(m.get(&m.in_flight), 0);
        m.inc(&m.in_flight);
        m.dec_in_flight();
        m.dec_in_flight();
        assert_eq!(m.get(&m.in_flight), 0);
    }
}
