//! Lock-free serving metrics: request counters and a handle-latency
//! histogram, snapshotted by the `stats` request.
//!
//! Everything here is plain atomics — recording a latency or bumping a
//! counter never takes a lock, so metrics stay truthful under the exact
//! saturation conditions they exist to diagnose. The histogram uses 64
//! power-of-two-microsecond buckets: bucket *i* counts latencies in
//! `[2^(i-1), 2^i)` µs (bucket 0 is `< 1 µs`), so percentile reads are
//! upper bounds exact to within 2× — plenty for capacity planning, and
//! immune to the unbounded-reservoir pathologies of exact quantiles.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets (covers up to 2^63 µs — effectively ∞).
const BUCKETS: usize = 64;

/// A lock-free latency histogram over power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one latency observation.
    pub fn record_us(&self, us: u64) {
        let bucket = (64 - us.leading_zeros()) as usize; // 0 for us == 0
        self.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Maximum latency observed, µs (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// The upper bound of the bucket the given percentile falls in
    /// (`p` in `[0, 100]`); 0 when the histogram is empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the observation that covers percentile p (1-based).
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i holds [2^(i-1), 2^i) µs; report the upper bound.
                return if i >= 63 { u64::MAX } else { 1u64 << i };
            }
        }
        self.max_us()
    }
}

/// Cumulative request counters for one serving process.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests received (decoded lines, queued or answered inline —
    /// including shed ones).
    pub requests_total: AtomicU64,
    /// Requests fully handled (ok or typed error written).
    pub completed: AtomicU64,
    /// Requests shed with `busy` (queue full or session cap).
    pub shed: AtomicU64,
    /// Requests that returned a `deadline` error.
    pub deadline_expired: AtomicU64,
    /// Requests currently queued or executing.
    pub in_flight: AtomicU64,
    /// Handle-latency histogram (decode→encode wall time).
    pub latency: LatencyHistogram,
}

impl ServeMetrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps a counter by one.
    pub fn inc(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements `in_flight` (saturating — a stray double-decrement
    /// must not wrap the gauge to u64::MAX).
    pub fn dec_in_flight(&self) {
        let _ = self
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Reads a counter.
    pub fn get(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_us(), 0);
        assert_eq!(h.percentile_us(50.0), 0);
        assert_eq!(h.percentile_us(99.0), 0);
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        // 99 fast observations and one slow outlier.
        for _ in 0..99 {
            h.record_us(100); // bucket [64, 128) → upper bound 128
        }
        h.record_us(1_000_000); // ~2^20 µs
        assert_eq!(h.count(), 100);
        assert_eq!(h.max_us(), 1_000_000);
        assert_eq!(h.percentile_us(50.0), 128);
        assert_eq!(h.percentile_us(99.0), 128);
        assert!(h.percentile_us(100.0) >= 1_000_000);
    }

    #[test]
    fn zero_and_huge_latencies_do_not_panic() {
        let h = LatencyHistogram::new();
        h.record_us(0);
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile_us(50.0), 1, "0 µs lands in the < 1 µs bucket");
    }

    #[test]
    fn in_flight_never_wraps() {
        let m = ServeMetrics::new();
        m.dec_in_flight();
        assert_eq!(m.get(&m.in_flight), 0);
        m.inc(&m.in_flight);
        m.dec_in_flight();
        m.dec_in_flight();
        assert_eq!(m.get(&m.in_flight), 0);
    }
}
