//! # scalesim
//!
//! **SCALE-Sim v3** — a modular, cycle-accurate systolic accelerator
//! simulator for end-to-end system analysis (Raj et al., ISPASS 2025),
//! reproduced in Rust.
//!
//! This crate is the integration layer. The substrates live in sibling
//! crates and are re-exported here:
//!
//! | feature (paper section) | crate |
//! |---|---|
//! | cycle-accurate systolic core (v2 substrate) | [`systolic`] |
//! | multi-core & spatio-temporal partitioning (§III) | [`multicore`] |
//! | N:M sparsity (§IV) | [`sparse`] |
//! | cycle-accurate DRAM (§V) | [`mem`] |
//! | on-chip data layout (§VI) | [`layout`] |
//! | energy & power (§VII) | [`energy`] |
//! | multi-chip scale-out collectives & parallelism | [`collective`] |
//! | evaluation workloads | [`workloads`] |
//!
//! ## End-to-end example
//!
//! ```
//! use scalesim::{ScaleSim, ScaleSimConfig};
//! use scalesim::systolic::{ArrayShape, Dataflow, GemmShape};
//!
//! let mut config = ScaleSimConfig::default();
//! config.core.array = ArrayShape::new(16, 16);
//! config.core.dataflow = Dataflow::WeightStationary;
//! config.enable_dram = true;
//! config.enable_energy = true;
//!
//! let sim = ScaleSim::new(config);
//! let result = sim.run_gemm("demo", GemmShape::new(64, 64, 64));
//! assert!(result.total_cycles() > 0);
//! assert!(result.energy.as_ref().unwrap().total_mj() > 0.0);
//! ```
//!
//! The three-step memory flow of §V-B is implemented exactly: the systolic
//! simulation first runs against ideal memory to produce a demand trace;
//! the trace replays through the cycle-accurate DRAM model yielding
//! per-request round-trip latencies and statistics; the systolic timing
//! then re-runs with those latencies and finite request queues to obtain
//! the stall-aware end-to-end latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod cfg;
pub mod cli;
pub mod config;
pub mod dram;
pub mod engine;
pub mod layout_analysis;
pub mod metrics;
pub mod pipeline;
pub mod result;
pub mod scaleout;
pub mod serve;
pub mod service;
pub mod sink;
pub mod sweep_run;

pub use cancel::CancelToken;
pub use cfg::parse_cfg;
pub use cli::{parse_cli, version_string, Command, RunArgs, ServeArgs, SweepArgs};
pub use config::{
    DramIntegration, LayoutIntegration, MultiCoreIntegration, ScaleSimConfig, SparsityMode,
};
pub use dram::{
    dram_analysis, shared_dram_contention, DramAnalysis, LatencyReplayStore, SharedDramContention,
};
pub use engine::{ScaleSim, StreamStats, STREAM_BLOCK};
pub use layout_analysis::{layout_slowdown_for_gemm, LayoutAnalysis};
pub use metrics::{LatencyHistogram, ServeMetrics};
pub use pipeline::{LayerCtx, LayerPipeline, LayerStage, PipelineBuilder, StageEnv, StageTiming};
pub use result::{LayerResult, RunResult};
pub use scaleout::{
    run_scaleout, CollectScaleoutSink, DiscardScaleoutSink, MemoryScaleoutSink, ScaleoutCsvSink,
    ScaleoutLayerRecord, ScaleoutSink, ScaleoutSummary,
};
pub use serve::{ServeOptions, Server, MAX_REQUEST_BYTES};
pub use service::{
    PreparedRun, PreparedScaleout, PreparedSweep, SimService, SERVICE_CACHE_CAPACITY,
};
pub use sink::{
    CollectSink, CsvReportSink, MemoryReportSink, ReportSections, ResultSink, RunSummary,
};
pub use sweep_run::{apply_point, run_sweep, run_sweep_cached, run_sweep_with};

/// Re-export: the stable typed request/response API and wire protocol.
pub use scalesim_api as api;
/// Re-export: multi-chip collective-communication and parallelism
/// modeling.
pub use scalesim_collective as collective;
/// Re-export: energy & power modeling substrate.
pub use scalesim_energy as energy;
/// Re-export: on-chip layout modeling substrate.
pub use scalesim_layout as layout;
/// Re-export: DRAM simulation substrate.
pub use scalesim_mem as mem;
/// Re-export: multi-core modeling.
pub use scalesim_multicore as multicore;
/// Re-export: sparsity support.
pub use scalesim_sparse as sparse;
/// Re-export: the design-space-exploration sweep engine.
pub use scalesim_sweep as sweep;
/// Re-export: the cycle-accurate systolic core.
pub use scalesim_systolic as systolic;
/// Re-export: evaluation workloads.
pub use scalesim_workloads as workloads;
