//! Per-request cancellation: a deadline token checked at stage
//! boundaries.
//!
//! A [`CancelToken`] carries the wall-clock instant a request must be
//! abandoned at, derived from the wire envelope's `deadline_ms` field.
//! Cancellation is **cooperative**: the pipeline and the service check
//! [`CancelToken::expired`] between stages (and between layers), never
//! preempting a stage mid-flight — so a cancelled request costs at most
//! one stage of overshoot and all shared state (plan cache, metrics)
//! stays coherent.
//!
//! Expiry latches: once a token observes its deadline passed, every
//! later check reports expired, and [`CancelToken::to_error`] renders
//! the deterministic [`SimError::Deadline`] message — the budget, not
//! the (nondeterministic) elapsed time, so serve responses stay
//! byte-reproducible.

use scalesim_api::SimError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct TokenInner {
    deadline: Instant,
    budget_ms: u64,
    expired: AtomicBool,
}

/// A cheaply clonable deadline token (see the module docs).
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A token that expires `budget_ms` milliseconds from now.
    pub fn after_ms(budget_ms: u64) -> Self {
        let deadline = Instant::now()
            .checked_add(Duration::from_millis(budget_ms))
            // Absurd budgets saturate to effectively-never rather than
            // panicking; the request then simply cannot expire.
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(u32::MAX as u64));
        Self {
            inner: Arc::new(TokenInner {
                deadline,
                budget_ms,
                expired: AtomicBool::new(false),
            }),
        }
    }

    /// Whether the deadline has passed. Latches: once true, always true
    /// (even if the clock were to misbehave), so every stage after the
    /// first expired check agrees the request is dead.
    pub fn expired(&self) -> bool {
        if self.inner.expired.load(Ordering::Relaxed) {
            return true;
        }
        if Instant::now() >= self.inner.deadline {
            self.inner.expired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// The budget this token was created with, in milliseconds.
    pub fn budget_ms(&self) -> u64 {
        self.inner.budget_ms
    }

    /// The typed error a request abandoned on this token reports. The
    /// message names the budget (deterministic), never the elapsed time.
    pub fn to_error(&self) -> SimError {
        SimError::Deadline(format!("deadline of {} ms exceeded", self.inner.budget_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_expires_immediately_and_latches() {
        let t = CancelToken::after_ms(0);
        assert!(t.expired());
        assert!(t.expired(), "expiry must latch");
        assert_eq!(t.budget_ms(), 0);
        let e = t.to_error();
        assert_eq!(e.kind(), "deadline");
        assert_eq!(e.exit_code(), 124);
        assert_eq!(e.message(), "deadline of 0 ms exceeded");
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let t = CancelToken::after_ms(600_000);
        assert!(!t.expired());
        let clone = t.clone();
        assert!(!clone.expired());
    }

    #[test]
    fn absurd_budget_saturates_instead_of_panicking() {
        let t = CancelToken::after_ms(u64::MAX);
        assert!(!t.expired());
    }

    #[test]
    fn clones_share_the_latch() {
        let t = CancelToken::after_ms(0);
        let clone = t.clone();
        assert!(clone.expired());
        assert!(t.expired());
    }
}
