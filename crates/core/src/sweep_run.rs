//! Design-space-exploration glue: runs a [`SweepSpec`] grid through the
//! integrated [`ScaleSim`] engine.
//!
//! The generic sweep machinery (spec parsing, grid expansion, sharded
//! execution, Pareto analysis, report emission) lives in the
//! `scalesim-sweep` crate; this module binds it to the engine — applying
//! each [`SweepPoint`]'s overrides to a base [`ScaleSimConfig`], running
//! every `(point, topology)` pair on the shared worker pool with **one
//! plan cache for the whole grid**, and reducing per-layer results into
//! [`RunRecord`]s.
//!
//! Everything here is deterministic: records are keyed by run index and
//! the report emitters sort by it, so `SWEEP_REPORT.{csv,json}` are
//! byte-identical regardless of `SCALESIM_THREADS` and the shard count.

use crate::config::{MultiCoreIntegration, ScaleSimConfig};
use crate::engine::ScaleSim;
use crate::scaleout::{run_scaleout, DiscardScaleoutSink, ScaleoutSummary};
use crate::sink::RunSummary;
use scalesim_multicore::{L2Config, PartitionScheme};
use scalesim_sweep::{run_sharded_with, RunRecord, SweepPoint, SweepReport, SweepSpec};
use scalesim_systolic::{Dataflow, MemoryConfig, PlanCache, PlanCacheStats, Topology};
use std::sync::Arc;

/// Applies a grid point's overrides to a base configuration; `None`
/// axes inherit the base value.
pub fn apply_point(base: &ScaleSimConfig, point: &SweepPoint) -> ScaleSimConfig {
    let mut cfg = base.clone();
    if let Some(array) = point.array {
        cfg.core.array = array;
    }
    if let Some(dataflow) = point.dataflow {
        cfg.core.dataflow = dataflow;
    }
    if let Some((ifmap_kb, filter_kb, ofmap_kb)) = point.sram_kb {
        let old = cfg.core.memory;
        let mut mem =
            MemoryConfig::from_kilobytes(ifmap_kb, filter_kb, ofmap_kb, old.bytes_per_word);
        mem.dram_bandwidth = old.dram_bandwidth;
        mem.sram_row_words = old.sram_row_words;
        mem.sram_row_buffers = old.sram_row_buffers;
        cfg.core.memory = mem;
    }
    if let Some(bandwidth) = point.bandwidth {
        cfg.core.memory.dram_bandwidth = bandwidth;
    }
    if let Some(grid) = point.cores {
        cfg.multicore = if grid.cores() == 1 {
            None
        } else {
            // Preserve the base scheme/L2 choice when the base is already
            // multi-core; default to spatial partitioning with a shared L2.
            let (scheme, l2) = match &base.multicore {
                Some(mc) => (mc.scheme, mc.l2),
                None => (PartitionScheme::Spatial, Some(L2Config::default())),
            };
            Some(MultiCoreIntegration { grid, scheme, l2 })
        };
    }
    if let Some(dram) = point.dram {
        cfg.enable_dram = dram;
    }
    if let Some(model) = point.dram_model {
        // The spec parser only admits `DramSpec::preset_names` entries.
        let spec = scalesim_mem::DramSpec::by_name(model)
            .unwrap_or_else(|| unreachable!("sweep spec admitted unknown dram model {model}"));
        cfg.dram = crate::config::DramIntegration::for_spec(spec, cfg.dram.channels, 1.0e9);
    }
    if let Some(energy) = point.energy {
        cfg.enable_energy = energy;
    }
    if let Some(layout) = point.layout {
        cfg.enable_layout = layout;
    }
    // Scale-out axes: any of them materializes the [scaleout] section
    // (seeded from the base config or the defaults) and overrides the
    // named knob; a resolved chip count of 1 stays a plain
    // single-chip run — the natural weak-scaling baseline.
    if point.chips.is_some() || point.link_gbps.is_some() || point.strategy.is_some() {
        let mut so = base.scaleout.clone().unwrap_or_default();
        if let Some(chips) = point.chips {
            so.chips = chips;
            so.mesh = None;
        }
        if let Some(gbps) = point.link_gbps {
            so.link_gbps = gbps;
        }
        if let Some(strategy) = point.strategy {
            so.strategy = strategy;
        }
        cfg.scaleout = if so.chips <= 1 { None } else { Some(so) };
    }
    // LLM axes: reshape the base [llm] model (the runner regenerates
    // the topology per point). Points sweeping these without an [llm]
    // model are rejected up front in `run_sweep_cached`.
    if let Some(llm) = cfg.llm.as_mut() {
        if let Some(seq) = point.seq {
            llm.spec.seq = seq;
        }
        if let Some(batch) = point.batch {
            llm.spec.batch = batch;
        }
        if let Some(phase) = point.phase {
            llm.phase = phase;
        }
    }
    cfg
}

fn dataflow_tag(d: Dataflow) -> &'static str {
    match d {
        Dataflow::OutputStationary => "os",
        Dataflow::WeightStationary => "ws",
        Dataflow::InputStationary => "is",
    }
}

/// The cfg-derived columns shared by every record kind (the run's
/// dynamic metrics are zeroed; the caller fills them). One source of
/// truth, so single-chip and scale-out rows can never disagree on
/// static configuration columns.
fn base_record(
    run: usize,
    point: &SweepPoint,
    cfg: &ScaleSimConfig,
    topology: &Topology,
) -> RunRecord {
    let mem = &cfg.core.memory;
    let kb = |words: usize| words * mem.bytes_per_word / 1024;
    RunRecord {
        run,
        point: point.index,
        point_label: point.label(),
        topology: topology.name().to_string(),
        array_rows: cfg.core.array.rows(),
        array_cols: cfg.core.array.cols(),
        dataflow: dataflow_tag(cfg.core.dataflow).to_string(),
        sram_kb: (
            kb(mem.ifmap_words),
            kb(mem.filter_words),
            kb(mem.ofmap_words),
        ),
        bandwidth: mem.dram_bandwidth,
        cores: cfg.multicore.as_ref().map_or(1, |mc| mc.grid.cores()),
        dram_enabled: cfg.enable_dram,
        energy_enabled: cfg.enable_energy,
        layout_enabled: cfg.enable_layout,
        layers: 0,
        total_cycles: 0,
        compute_cycles: 0,
        stall_cycles: 0,
        utilization: 0.0,
        macs: 0,
        energy_mj: 0.0,
        edp_cycles_mj: 0.0,
        noc_words: 0,
    }
}

/// Reduces one topology run's streamed [`RunSummary`] into a sweep
/// record. The summary accumulates the same reductions (in the same
/// layer order) the collected `RunResult` path used to compute, so
/// records — and therefore report bytes — are unchanged; the layer
/// results themselves are never materialized.
fn record_for(
    run: usize,
    point: &SweepPoint,
    cfg: &ScaleSimConfig,
    topology: &Topology,
    summary: &RunSummary,
) -> RunRecord {
    RunRecord {
        layers: summary.layers,
        total_cycles: summary.total_cycles,
        compute_cycles: summary.compute_cycles,
        stall_cycles: summary.stall_cycles,
        utilization: summary.utilization(),
        macs: summary.macs,
        energy_mj: summary.energy_mj(),
        edp_cycles_mj: summary.edp_cycles_mj(),
        noc_words: summary.noc_words,
        ..base_record(run, point, cfg, topology)
    }
}

/// Reduces a scale-out run's summary into a sweep record. The standard
/// columns keep their meaning where one exists at system scale:
/// `TotalCycles` is the multi-chip critical path, `StallCycles` carries
/// the exposed communication plus the pipeline bubble (the scale-out
/// analogue of waiting on memory), `MACs` are the simulated shards'
/// (per-chip under data/tensor, whole-pass under pipeline), and
/// `EnergyMj` is the fleet total
/// ([`ScaleoutSummary::fleet_energy_mj`]). The scale-out axes
/// themselves are encoded in `PointLabel` (`p8-g100-dp`).
fn record_for_scaleout(
    run: usize,
    point: &SweepPoint,
    cfg: &ScaleSimConfig,
    topology: &Topology,
    summary: &ScaleoutSummary,
) -> RunRecord {
    let fleet_energy = summary.fleet_energy_mj();
    RunRecord {
        layers: summary.layers,
        total_cycles: summary.total_cycles,
        compute_cycles: summary.compute_cycles,
        stall_cycles: summary.exposed_cycles + summary.bubble_cycles,
        utilization: summary.utilization(),
        macs: summary.simulated_macs,
        energy_mj: fleet_energy,
        edp_cycles_mj: summary.total_cycles as f64 * fleet_energy,
        noc_words: summary.noc_words,
        ..base_record(run, point, cfg, topology)
    }
}

/// Executes the whole sweep: expands the grid, validates every point,
/// runs each `(point, topology)` pair on the sharded worker pool with a
/// single [`PlanCache`] shared across all configurations, and aggregates
/// everything into a [`SweepReport`].
///
/// Returns the report plus the shared cache's counters (how much
/// planning the grid shared; the counters are timing-dependent under
/// parallel execution and are *not* part of the deterministic report).
///
/// # Errors
///
/// Returns an error naming the offending grid point when any expanded
/// configuration fails validation (e.g. an SRAM too small to
/// double-buffer the array), before any simulation runs.
pub fn run_sweep(
    spec: &SweepSpec,
    base: &ScaleSimConfig,
    topologies: &[Topology],
    shards: usize,
) -> Result<(SweepReport, PlanCacheStats), String> {
    run_sweep_with(spec, base, topologies, shards, |_| {})
}

/// [`run_sweep`] with a streaming observer: `on_record` sees every
/// [`RunRecord`] as its shard completes (shard emission order — not
/// globally sorted by run index; the final report sorts). Use it for
/// progress reporting or incremental accumulators (e.g.
/// [`scalesim_sweep::ParetoAccumulator`]) without waiting for the grid.
///
/// Each run streams its layers through an O(1) [`RunSummary`] sink, so
/// peak memory is bounded by the worker block — not the topology length
/// — times the thread count, plus one record per run.
///
/// # Errors
///
/// Returns an error naming the offending grid point when any expanded
/// configuration fails validation, before any simulation runs.
pub fn run_sweep_with(
    spec: &SweepSpec,
    base: &ScaleSimConfig,
    topologies: &[Topology],
    shards: usize,
    on_record: impl FnMut(&RunRecord),
) -> Result<(SweepReport, PlanCacheStats), String> {
    // One cache for every configuration in the grid. Sized to hold the
    // worst case — each point's distinct layer shapes — so sweeping never
    // thrashes a generation-evicting cache.
    let distinct_shapes: usize = topologies.iter().map(|t| t.len()).sum::<usize>().max(1);
    let cache = Arc::new(PlanCache::with_capacity(
        (spec.grid_size() * distinct_shapes).max(PlanCache::DEFAULT_CAPACITY),
    ));
    run_sweep_cached(spec, base, topologies, shards, &cache, on_record)
}

/// [`run_sweep_with`] against a **caller-owned** [`PlanCache`] — what a
/// persistent `scalesim serve` process uses so successive sweep (and
/// run) requests share warm plans. Results never depend on the cache's
/// contents or capacity; only planning time does.
///
/// # Errors
///
/// Returns an error naming the offending grid point when any expanded
/// configuration fails validation, before any simulation runs.
pub fn run_sweep_cached(
    spec: &SweepSpec,
    base: &ScaleSimConfig,
    topologies: &[Topology],
    shards: usize,
    cache: &Arc<PlanCache>,
    mut on_record: impl FnMut(&RunRecord),
) -> Result<(SweepReport, PlanCacheStats), String> {
    let grid = spec.expand();
    for point in &grid {
        if (point.seq.is_some() || point.batch.is_some() || point.phase.is_some())
            && base.llm.is_none()
        {
            return Err(format!(
                "grid point '{}': the seq/batch/phase axes need an [llm] model in the \
                 base config",
                point.label()
            ));
        }
        let cfg = apply_point(base, point);
        cfg.core
            .validate()
            .map_err(|e| format!("grid point '{}': {e}", point.label()))?;
        if let Some(so) = &cfg.scaleout {
            so.fabric()
                .map_err(|e| format!("grid point '{}': {e}", point.label()))?;
        }
        if let Some(llm) = &cfg.llm {
            llm.spec
                .validate()
                .map_err(|e| format!("grid point '{}': {e}", point.label()))?;
        }
    }
    let mut records = Vec::with_capacity(grid.len() * topologies.len());
    run_sharded_with(
        &grid,
        topologies,
        shards,
        |run, point, topology| {
            let cfg = apply_point(base, point);
            // An [llm] model is the workload itself: its GEMM shapes
            // depend on the point's seq/batch/phase, so the topology is
            // regenerated here rather than taken from the fixed list.
            let llm_topology = cfg.llm.as_ref().map(|llm| {
                llm.topology()
                    .expect("llm points are validated before the grid runs")
            });
            let topology = llm_topology.as_ref().unwrap_or(topology);
            let sim = ScaleSim::new_with_cache(cfg.clone(), Arc::clone(cache));
            if let Some(so) = &cfg.scaleout {
                let summary = run_scaleout(&sim, topology, so, &mut DiscardScaleoutSink)
                    .expect("scale-out points are validated before the grid runs");
                record_for_scaleout(run, point, &cfg, topology, &summary)
            } else {
                let mut summary = RunSummary::new();
                sim.run_topology_with(topology, &mut summary);
                record_for(run, point, &cfg, topology, &summary)
            }
        },
        |_, record| {
            on_record(&record);
            records.push(record);
        },
    );
    Ok((SweepReport::new(spec.name.clone(), records), cache.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_systolic::{ArrayShape, Layer};

    fn spec(text: &str) -> SweepSpec {
        SweepSpec::parse(text).unwrap()
    }

    fn small_topos() -> Vec<Topology> {
        vec![
            Topology::from_layers(
                "t0",
                vec![
                    Layer::gemm_layer("a", 16, 16, 16),
                    Layer::gemm_layer("b", 24, 24, 24),
                ],
            ),
            Topology::from_layers("t1", vec![Layer::gemm_layer("c", 32, 32, 32)]),
        ]
    }

    #[test]
    fn apply_point_overrides_only_swept_axes() {
        let base = ScaleSimConfig::default();
        let grid = spec("array = 16x8\nbandwidth = 4\n").expand();
        let cfg = apply_point(&base, &grid[0]);
        assert_eq!(cfg.core.array, ArrayShape::new(16, 8));
        assert_eq!(cfg.core.memory.dram_bandwidth, 4.0);
        assert_eq!(cfg.core.dataflow, base.core.dataflow);
        assert_eq!(cfg.core.memory.ifmap_words, base.core.memory.ifmap_words);
    }

    #[test]
    fn apply_point_swaps_the_dram_device_preset() {
        let base = ScaleSimConfig::default();
        let grid = spec("dram = true\ndram_model = hbm2, lpddr4_3200\n").expand();
        let a = apply_point(&base, &grid[0]);
        assert!(a.enable_dram);
        assert_eq!(a.dram.spec.name, scalesim_mem::DramSpec::hbm2().name);
        let b = apply_point(&base, &grid[1]);
        assert_eq!(b.dram.spec.name, scalesim_mem::DramSpec::lpddr4_3200().name);
        assert_ne!(
            a.dram.mem_cycles_per_core_cycle,
            b.dram.mem_cycles_per_core_cycle
        );
    }

    #[test]
    fn apply_point_multicore_roundtrip() {
        let base = ScaleSimConfig::default();
        let grid = spec("cores = 1x1, 2x2\n").expand();
        assert!(apply_point(&base, &grid[0]).multicore.is_none());
        let mc = apply_point(&base, &grid[1]).multicore.unwrap();
        assert_eq!(mc.grid.cores(), 4);
    }

    #[test]
    fn invalid_grid_point_is_reported_before_running() {
        let base = ScaleSimConfig::default();
        // 1 kB SRAM cannot double-buffer a 512-wide array.
        let s = spec("array = 512x512\nsram_kb = 1/1/1\n");
        let err = run_sweep(&s, &base, &small_topos(), 1).unwrap_err();
        assert!(err.contains("512x512"), "{err}");
    }

    #[test]
    fn sweep_runs_grid_times_topologies() {
        let base = ScaleSimConfig::default();
        let s = spec("array = 8x8, 16x16\ndataflow = os, ws\nenergy = true\n");
        // shards = total runs serializes across runs, making the cache
        // counters deterministic (concurrent misses on one key may
        // otherwise both plan and both count).
        let (report, stats) = run_sweep(&s, &base, &small_topos(), 8).unwrap();
        assert_eq!(report.records().len(), 4 * 2);
        assert_eq!(report.points().len(), 4);
        assert!(!report.pareto_labels().is_empty());
        // 4 configs x 3 distinct shapes planned once each.
        assert_eq!(stats.misses, 12);
        assert!(report.records().iter().all(|r| r.total_cycles > 0));
        assert!(report.records().iter().all(|r| r.energy_mj > 0.0));
    }

    #[test]
    fn streaming_observer_sees_every_record() {
        let base = ScaleSimConfig::default();
        let s = spec("array = 8x8\nbandwidth = 4, 10\n");
        let mut seen = Vec::new();
        let (report, _) =
            run_sweep_with(&s, &base, &small_topos(), 2, |r| seen.push(r.run)).unwrap();
        assert_eq!(seen.len(), report.records().len());
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..4).collect::<Vec<_>>());
    }

    #[test]
    fn shard_count_does_not_change_report_bytes() {
        let base = ScaleSimConfig::default();
        let s = spec("array = 8x8, 16x16\nbandwidth = 4, 10\nenergy = true\n");
        let topos = small_topos();
        let (r1, _) = run_sweep(&s, &base, &topos, 1).unwrap();
        let (r3, _) = run_sweep(&s, &base, &topos, 3).unwrap();
        assert_eq!(r1.to_csv(), r3.to_csv());
        assert_eq!(r1.to_json(), r3.to_json());
    }

    #[test]
    fn scaleout_axes_run_through_the_collective_path() {
        let base = ScaleSimConfig::default();
        let s = spec("chips = 1, 8\nstrategy = data\nlink_gbps = 100\n");
        // Batch (M) large enough that an 8-way shard visibly shrinks
        // per-chip compute on the default 32x32 array.
        let topos = vec![Topology::from_layers(
            "big",
            vec![
                Layer::gemm_layer("a", 512, 64, 64),
                Layer::gemm_layer("b", 512, 96, 64),
            ],
        )];
        let (report, _) = run_sweep(&s, &base, &topos, 1).unwrap();
        assert_eq!(report.records().len(), 2);
        let records = report.records();
        // chips = 1 is the plain single-chip baseline (no comm), so for
        // the same topology the 8-chip run computes less per chip.
        let single = &records[0];
        let eight = &records[1];
        assert_eq!(single.point_label, "p1-g100-dp");
        assert_eq!(eight.point_label, "p8-g100-dp");
        assert_eq!(single.topology, eight.topology);
        assert!(eight.compute_cycles < single.compute_cycles);
        assert!(eight.stall_cycles > 0, "exposed comm lands in StallCycles");
    }

    #[test]
    fn scaleout_points_validate_before_running() {
        let base = ScaleSimConfig::default();
        // 6 chips on a switch fabric is invalid (power of two required).
        let mut cfg = base.clone();
        cfg.scaleout = Some(scalesim_collective::ScaleoutSpec {
            fabric: scalesim_collective::FabricTag::Switch,
            ..Default::default()
        });
        let s = spec("chips = 6\n");
        let err = run_sweep(&s, &cfg, &small_topos(), 1).unwrap_err();
        assert!(err.contains("p6"), "{err}");
        assert!(err.contains("power-of-two"), "{err}");
    }

    #[test]
    fn llm_axes_regenerate_the_topology_per_point() {
        use scalesim_llm::{LlmRunSpec, LlmSpec, Phase};
        let mut model = LlmSpec::preset("gpt2-xl").unwrap();
        model.layers = 2;
        model.d_model = 64;
        model.heads = 4;
        model.kv_heads = 4;
        model.d_ff = 128;
        model.vocab = 256;
        model.seq = 16;
        model.batch = 1;
        let mut base = ScaleSimConfig::default();
        base.llm = Some(LlmRunSpec {
            spec: model,
            phase: Phase::Prefill,
            context: None,
        });
        let workload = vec![base.llm.as_ref().unwrap().topology().unwrap()];
        let s = spec("phase = prefill, decode\nseq = 8, 16\n");
        let (report, _) = run_sweep(&s, &base, &workload, 1).unwrap();
        let records = report.records();
        assert_eq!(records.len(), 4);
        // Odometer order: seq varies slower than phase (seq listed first
        // in the point, phase fastest) — labels pin both.
        assert_eq!(records[0].point_label, "s8-pf");
        assert_eq!(records[1].point_label, "s8-dec");
        // The topology is regenerated per point: phase shows up in the
        // workload name and decode does far less work than prefill.
        assert!(records[0].topology.ends_with("prefill"));
        assert!(records[1].topology.ends_with("decode"));
        assert!(records[1].macs < records[0].macs);
        // Longer prefill sequences do more MACs.
        assert!(records[2].macs > records[0].macs);
    }

    #[test]
    fn llm_axes_without_a_model_are_rejected() {
        let base = ScaleSimConfig::default();
        let s = spec("seq = 8, 16\n");
        let err = run_sweep(&s, &base, &small_topos(), 1).unwrap_err();
        assert!(err.contains("[llm]"), "{err}");
        assert!(err.contains("s8"), "{err}");
    }

    #[test]
    fn bandwidth_axis_shares_plans_across_points() {
        let base = ScaleSimConfig::default();
        // Two bandwidths, same planning key -> each shape planned once.
        let s = spec("bandwidth = 4, 10\n");
        let topos = small_topos();
        // shards = total runs serializes across runs (see above).
        let (_, stats) = run_sweep(&s, &base, &topos, 4).unwrap();
        assert_eq!(stats.misses, 3, "plans must be shared across the grid");
        assert!(stats.hits >= 3);
    }
}
