//! The staged per-layer execution pipeline.
//!
//! SCALE-Sim v3's headline claim is *modularity*: sparsity, multi-core
//! partitioning, DRAM, layout and energy are independent features
//! composed per layer. This module makes that composition explicit. A
//! layer flows through an ordered list of [`LayerStage`]s, each reading
//! and extending one shared [`LayerCtx`]:
//!
//! ```text
//!           ┌──────────┐ ┌─────────────────┐ ┌──────┐ ┌────────┐ ┌────────┐ ┌────────┐
//! GemmShape │ sparsify │→│ compute         │→│ dram │→│ layout │→│ sparse │→│ energy │→ LayerResult
//!           │   (§IV)  │ │ partition+plan  │ │ (§V) │ │ (§VI)  │ │ store  │ │ (§VII) │
//!           └──────────┘ │ +timing (§II-III)│ └──────┘ └────────┘ └────────┘ └────────┘
//!                        └─────────────────┘
//! ```
//!
//! A [`PipelineBuilder`] assembles the stage list **once per
//! configuration** from a [`ScaleSimConfig`] — disabled features simply
//! contribute no stage — and every driver (single runs, whole
//! topologies, the design-space sweep executor) executes the same
//! [`LayerPipeline`] instead of hand-rolling its own feature wiring.
//!
//! ## Writing a new stage
//!
//! Implement [`LayerStage`]: read your inputs from the [`LayerCtx`]
//! (e.g. the planned layer left by the compute stage), write your
//! product back into it, and append the stage with
//! [`PipelineBuilder::with_stage`]. Stages run in list order on one
//! layer at a time; they must be `Send + Sync` because whole-topology
//! runs execute layers concurrently.
//!
//! ## Profiling
//!
//! Built with [`PipelineBuilder::profile_stages`], the pipeline keeps
//! per-stage call counts and cumulative wall-clock time (atomic, so the
//! parallel topology path aggregates for free); `scalesim
//! --profile-stages` prints the table.

use crate::config::{ScaleSimConfig, SparsityMode};
use crate::dram::{dram_analysis, DramAnalysis};
use crate::layout_analysis::{layout_slowdown_for_gemm, LayoutAnalysis};
use crate::result::LayerResult;
use scalesim_energy::{ActionCounts, ArchSpec, EnergyModel, EnergyReport, LayerActivity};
use scalesim_multicore::{partition_layer, L2Report};
use scalesim_obs as obs;
use scalesim_sparse::{SparseReport, SparseReportRow, SparsityPattern};
use scalesim_systolic::{
    timing, CoreSim, Dataflow, GemmShape, IdealBandwidthStore, LayerReport, PlanCache, PlannedLayer,
};
use std::sync::Arc;

/// Everything the stages of one layer's execution share.
///
/// Created empty (just the layer name and dense GEMM) by
/// [`LayerPipeline::run_layer`]; each stage fills in its slice. Optional
/// slots stay `None` when the owning feature is disabled.
#[derive(Debug, Clone)]
pub struct LayerCtx {
    /// Layer name.
    pub name: String,
    /// The dense GEMM before any sparsity compression.
    pub dense_gemm: GemmShape,
    /// The GEMM actually executed (rewritten by the sparsify stage).
    pub gemm: GemmShape,
    /// Sparsity pattern (sparsify stage; `None` when dense).
    pub pattern: Option<SparsityPattern>,
    /// Cycle-accurate per-core report (compute stage).
    pub report: Option<LayerReport>,
    /// The representative core's fetch plan (compute stage); input to
    /// the DRAM replay stage.
    pub planned: Option<Arc<PlannedLayer>>,
    /// Shared-L2 analysis (compute stage, multi-core with L2 only).
    pub l2: Option<L2Report>,
    /// Cores used (compute stage; 1 = single core).
    pub cores: usize,
    /// L2→L1 NoC words (compute stage; multi-core only).
    pub noc_words: u64,
    /// Three-step DRAM analysis (dram stage).
    pub dram: Option<DramAnalysis>,
    /// Bank-conflict analysis (layout stage).
    pub layout: Option<LayoutAnalysis>,
    /// Storage-format report row (sparse-storage stage).
    pub sparse: Option<SparseReportRow>,
    /// Energy report (energy stage).
    pub energy: Option<EnergyReport>,
}

impl LayerCtx {
    /// A fresh context for one layer; `gemm` starts equal to the dense
    /// GEMM until the sparsify stage rewrites it.
    pub fn new(name: impl Into<String>, dense_gemm: GemmShape) -> Self {
        Self {
            name: name.into(),
            dense_gemm,
            gemm: dense_gemm,
            pattern: None,
            report: None,
            planned: None,
            l2: None,
            cores: 1,
            noc_words: 0,
            dram: None,
            layout: None,
            sparse: None,
            energy: None,
        }
    }

    /// Collapses the context into the layer's final result.
    ///
    /// # Panics
    ///
    /// Panics if the compute stage has not run (no report).
    pub fn into_result(self) -> LayerResult {
        LayerResult {
            name: self.name,
            gemm: self.gemm,
            dense_gemm: self.dense_gemm,
            report: self
                .report
                .expect("pipeline must include the compute stage"),
            dram: self.dram,
            layout: self.layout,
            energy: self.energy,
            sparse: self.sparse,
            cores: self.cores,
            noc_words: self.noc_words,
        }
    }
}

/// The per-configuration environment stages execute against: the full
/// configuration plus the plan cache shared across layers (and sweeps).
#[derive(Debug, Clone)]
pub struct StageEnv {
    config: ScaleSimConfig,
    plan_cache: Arc<PlanCache>,
}

impl StageEnv {
    /// The configuration in use.
    pub fn config(&self) -> &ScaleSimConfig {
        &self.config
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// The dataflow layers actually run with: the paper fixes
    /// weight-stationary for all sparsity simulations.
    pub fn effective_dataflow(&self) -> Dataflow {
        if self.config.sparsity.is_some() {
            Dataflow::WeightStationary
        } else {
            self.config.core.dataflow
        }
    }
}

/// One stage of the per-layer pipeline.
///
/// Stages are stateless w.r.t. layers — all per-layer state lives in the
/// [`LayerCtx`] — and must be `Send + Sync` because topology runs
/// execute layers concurrently on the worker pool.
pub trait LayerStage: Send + Sync {
    /// Short stable name (shown by `--profile-stages`).
    fn name(&self) -> &'static str;
    /// Executes the stage on one layer.
    fn run(&self, env: &StageEnv, ctx: &mut LayerCtx);
}

/// §IV: rewrites the GEMM to its sparsity-compressed form and records
/// the pattern for the storage stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct SparsifyStage;

impl LayerStage for SparsifyStage {
    fn name(&self) -> &'static str {
        "sparsify"
    }

    fn run(&self, env: &StageEnv, ctx: &mut LayerCtx) {
        let gemm = ctx.dense_gemm;
        let seed_tag = ctx.name.bytes().map(u64::from).sum::<u64>();
        let (gemm, pattern) = match env.config.sparsity {
            None => (gemm, None),
            Some(SparsityMode::LayerWise(ratio)) => {
                let pattern = SparsityPattern::layer_wise(gemm.k, ratio);
                let kp = pattern.effective_k().max(1);
                (GemmShape::new(gemm.m, gemm.n, kp), Some(pattern))
            }
            Some(SparsityMode::RowWise { block, seed }) => {
                let pattern = SparsityPattern::row_wise(gemm.k, block, seed ^ seed_tag);
                let kp = pattern.effective_k().max(1);
                (GemmShape::new(gemm.m, gemm.n, kp), Some(pattern))
            }
        };
        ctx.gemm = gemm;
        ctx.pattern = pattern;
    }
}

/// §II–III: partitions the GEMM across the core grid (when multi-core),
/// plans the representative core's fetch schedule through the shared
/// plan cache, and times it against ideal-bandwidth memory.
#[derive(Debug, Clone, Copy, Default)]
pub struct ComputeStage;

impl LayerStage for ComputeStage {
    fn name(&self) -> &'static str {
        "compute"
    }

    fn run(&self, env: &StageEnv, ctx: &mut LayerCtx) {
        let mut core_cfg = env.config.core.clone();
        core_cfg.dataflow = env.effective_dataflow();
        let (sub_gemm, cores, l2, noc_words, bandwidth) = match &env.config.multicore {
            None => (ctx.gemm, 1, None, 0, core_cfg.memory.dram_bandwidth),
            Some(mc) => {
                let part = partition_layer(
                    core_cfg.dataflow,
                    mc.scheme,
                    ctx.gemm,
                    mc.grid,
                    mc.l2,
                    core_cfg.memory.dram_bandwidth,
                    true,
                );
                (
                    part.sub_gemm,
                    part.cores,
                    part.l2,
                    part.noc_words,
                    part.per_core_bandwidth,
                )
            }
        };
        core_cfg.memory.dram_bandwidth = bandwidth;
        let sim = CoreSim::new(core_cfg).with_plan_cache(Arc::clone(&env.plan_cache));
        let planned = sim.plan_gemm_shared(sub_gemm);
        let mut store = IdealBandwidthStore::new(bandwidth);
        let memory = timing(&planned.inputs, &mut store);
        ctx.report = Some(LayerReport {
            name: ctx.name.clone(),
            gemm: sub_gemm,
            compute: planned.compute,
            memory,
            sram: planned.sram,
        });
        ctx.planned = Some(planned);
        ctx.l2 = l2;
        ctx.cores = cores;
        ctx.noc_words = noc_words;
    }
}

/// §V: replays the representative core's demand trace through the
/// cycle-accurate DRAM model and re-times with the measured latencies.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramStage;

impl LayerStage for DramStage {
    fn name(&self) -> &'static str {
        "dram"
    }

    fn run(&self, env: &StageEnv, ctx: &mut LayerCtx) {
        let planned = ctx
            .planned
            .as_ref()
            .expect("the compute stage must precede the dram stage");
        ctx.dram = Some(dram_analysis(
            &planned.inputs,
            env.config.core.memory.dram_bandwidth,
            env.config.core.memory.bytes_per_word,
            &env.config.dram,
        ));
    }
}

/// §VI: costs the demand stream under the banked on-chip layout model.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayoutStage;

impl LayerStage for LayoutStage {
    fn name(&self) -> &'static str {
        "layout"
    }

    fn run(&self, env: &StageEnv, ctx: &mut LayerCtx) {
        ctx.layout = Some(layout_slowdown_for_gemm(
            env.config.core.array,
            env.effective_dataflow(),
            ctx.gemm,
            &env.config.layout,
        ));
    }
}

/// §IV: storage accounting for the compressed filter operand.
#[derive(Debug, Clone, Copy, Default)]
pub struct SparseStorageStage;

impl LayerStage for SparseStorageStage {
    fn name(&self) -> &'static str {
        "sparse"
    }

    fn run(&self, env: &StageEnv, ctx: &mut LayerCtx) {
        if let Some(pattern) = &ctx.pattern {
            let mut rep = SparseReport::new();
            rep.add_layer(
                &ctx.name,
                pattern,
                ctx.dense_gemm.n,
                env.config.sparse_format,
                env.config.core.memory.bytes_per_word * 8,
            );
            ctx.sparse = Some(rep.rows()[0].clone());
        }
    }
}

/// §VII: converts the activity counters of the preceding stages into an
/// Accelergy-style energy report.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyStage;

impl LayerStage for EnergyStage {
    fn name(&self) -> &'static str {
        "energy"
    }

    fn run(&self, env: &StageEnv, ctx: &mut LayerCtx) {
        let report = ctx
            .report
            .as_ref()
            .expect("the compute stage must precede the energy stage");
        let total_cycles = ctx
            .dram
            .as_ref()
            .map(|d| d.summary.total_cycles)
            .unwrap_or(report.memory.total_cycles);
        // With a shared L2, duplicated operand partitions are fetched
        // from DRAM once and fanned out over the NoC; scale the
        // per-core DRAM reads down by the measured duplication factor.
        let dram_read_scale = match &ctx.l2 {
            Some(l2) if ctx.cores > 1 => {
                let distinct = (l2.required_words / 2).max(1) as f64;
                (distinct / l2.l1_fill_words.max(1) as f64).min(1.0)
            }
            _ => 1.0,
        };
        let activity = LayerActivity {
            total_cycles,
            macs: report.compute.macs,
            utilization: report.compute.utilization,
            ifmap_sram_reads: report.sram.ifmap_reads,
            ifmap_sram_repeats: report.sram.ifmap_repeat_reads,
            filter_sram_reads: report.sram.filter_reads,
            filter_sram_repeats: report.sram.filter_repeat_reads,
            ofmap_sram_accesses: report.sram.ofmap_reads + report.sram.ofmap_writes,
            ofmap_sram_repeats: report.sram.ofmap_repeat_accesses,
            dram_reads: (report.memory.total_dram_reads() as f64 * dram_read_scale) as u64,
            dram_writes: report.memory.total_dram_writes(),
            // Per-core share: the counts are replicated across cores
            // below, which restores the grid total.
            noc_words: ctx.noc_words / ctx.cores.max(1) as u64,
        };
        let arr = env.config.core.array;
        let mem = &env.config.core.memory;
        let arch = ArchSpec::new(
            arr.rows(),
            arr.cols(),
            mem.ifmap_words * mem.bytes_per_word,
            mem.filter_words * mem.bytes_per_word,
            mem.ofmap_words * mem.bytes_per_word,
        );
        let model = EnergyModel::eyeriss_65nm(arch);
        let ports = (arr.rows() as u64, arr.cols() as u64, arr.cols() as u64);
        // Idle PEs hold their operands (constant-input switching) rather
        // than being clock-gated: the paper's Table V / Fig. 15 energies
        // grow with array size at fixed work, which requires a
        // significant per-idle-PE-cycle cost.
        let mut counts = ActionCounts::from_layer(&activity, arch.num_pes() as u64, ports, false);
        if ctx.cores > 1 {
            // Symmetric cores: scale all activity by the core count.
            let single = counts;
            for _ in 1..ctx.cores {
                counts.merge(&single);
            }
        }
        ctx.energy = Some(model.evaluate(&counts, total_cycles));
    }
}

/// One stage's aggregated timing, as reported by
/// [`LayerPipeline::profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name.
    pub stage: &'static str,
    /// Invocations (one per layer the stage ran on).
    pub calls: u64,
    /// Cumulative wall-clock nanoseconds across all invocations.
    pub nanos: u64,
}

impl StageTiming {
    /// Cumulative time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.nanos as f64 / 1.0e6
    }
}

/// An immutable, shareable per-configuration pipeline: the stage list
/// plus the environment ([`StageEnv`]) they execute against.
pub struct LayerPipeline {
    env: StageEnv,
    stages: Vec<Box<dyn LayerStage>>,
    /// Per-stage call/time totals, fed by the same spans that emit
    /// trace events — one timing path for profiling and tracing.
    profiler: Option<obs::Totals>,
}

impl std::fmt::Debug for LayerPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayerPipeline")
            .field("stages", &self.stage_names())
            .field("profiled", &self.profiler.is_some())
            .finish()
    }
}

impl LayerPipeline {
    /// The environment the stages run against.
    pub fn env(&self) -> &StageEnv {
        &self.env
    }

    /// The stage names, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Runs one layer through every stage, in order.
    pub fn run_layer(&self, name: &str, dense_gemm: GemmShape) -> LayerResult {
        self.run_layer_cancellable(name, dense_gemm, None)
            .expect("no cancel token, so the layer always completes")
    }

    /// Runs one layer through every stage, checking `cancel` **before**
    /// each stage. Returns `None` if the token expired — the layer is
    /// abandoned whole (a partially-staged context is never surfaced,
    /// because downstream stages and [`LayerCtx::into_result`] assume
    /// the compute product exists).
    pub fn run_layer_cancellable(
        &self,
        name: &str,
        dense_gemm: GemmShape,
        cancel: Option<&crate::cancel::CancelToken>,
    ) -> Option<LayerResult> {
        let mut ctx = LayerCtx::new(name, dense_gemm);
        match &self.profiler {
            None => {
                for stage in &self.stages {
                    if cancel.is_some_and(|c| c.expired()) {
                        return None;
                    }
                    let _span = obs::span(obs::Category::Pipeline, stage.name());
                    stage.run(&self.env, &mut ctx);
                }
            }
            Some(totals) => {
                for (index, stage) in self.stages.iter().enumerate() {
                    if cancel.is_some_and(|c| c.expired()) {
                        return None;
                    }
                    let _span = obs::span_for(obs::Category::Pipeline, stage.name(), totals, index);
                    stage.run(&self.env, &mut ctx);
                }
            }
        }
        Some(ctx.into_result())
    }

    /// The per-stage timings accumulated so far (None unless built with
    /// [`PipelineBuilder::profile_stages`]).
    pub fn profile(&self) -> Option<Vec<StageTiming>> {
        let totals = self.profiler.as_ref()?;
        Some(
            totals
                .snapshot()
                .into_iter()
                .map(|(stage, calls, nanos)| StageTiming {
                    stage,
                    calls,
                    nanos,
                })
                .collect(),
        )
    }
}

/// Assembles a [`LayerPipeline`] from a configuration: enabled features
/// contribute their stage, disabled ones are simply absent.
pub struct PipelineBuilder {
    config: ScaleSimConfig,
    plan_cache: Option<Arc<PlanCache>>,
    profile: bool,
    extra: Vec<Box<dyn LayerStage>>,
}

impl PipelineBuilder {
    /// Starts a builder for `config`.
    pub fn new(config: ScaleSimConfig) -> Self {
        Self {
            config,
            plan_cache: None,
            profile: false,
            extra: Vec::new(),
        }
    }

    /// Shares an existing plan cache (e.g. one cache for a whole sweep
    /// grid) instead of creating a private one.
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Enables per-stage call/time accounting (`--profile-stages`).
    pub fn profile_stages(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Appends a custom stage after the built-in ones.
    pub fn with_stage(mut self, stage: Box<dyn LayerStage>) -> Self {
        self.extra.push(stage);
        self
    }

    /// Builds the pipeline: `sparsify? → compute → dram? → layout? →
    /// sparse-storage? → energy?` plus any custom stages.
    pub fn build(self) -> LayerPipeline {
        let mut stages: Vec<Box<dyn LayerStage>> = Vec::new();
        if self.config.sparsity.is_some() {
            stages.push(Box::new(SparsifyStage));
        }
        stages.push(Box::new(ComputeStage));
        if self.config.enable_dram {
            stages.push(Box::new(DramStage));
        }
        if self.config.enable_layout {
            stages.push(Box::new(LayoutStage));
        }
        if self.config.sparsity.is_some() {
            stages.push(Box::new(SparseStorageStage));
        }
        if self.config.enable_energy {
            stages.push(Box::new(EnergyStage));
        }
        stages.extend(self.extra);
        let profiler = self.profile.then(|| {
            let names: Vec<&'static str> = stages.iter().map(|s| s.name()).collect();
            obs::Totals::new(&names)
        });
        LayerPipeline {
            env: StageEnv {
                config: self.config,
                plan_cache: self
                    .plan_cache
                    .unwrap_or_else(|| Arc::new(PlanCache::new())),
            },
            stages,
            profiler,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_sparse::NmRatio;
    use scalesim_systolic::{ArrayShape, MemoryConfig, SimConfig};

    fn small_config() -> ScaleSimConfig {
        let mut config = ScaleSimConfig::default();
        config.core = SimConfig::builder()
            .array(ArrayShape::new(8, 8))
            .dataflow(Dataflow::WeightStationary)
            .build();
        config.core.memory = MemoryConfig::from_kilobytes(16, 16, 8, 2);
        config
    }

    #[test]
    fn builder_selects_stages_from_config() {
        let dense = PipelineBuilder::new(small_config()).build();
        assert_eq!(dense.stage_names(), ["compute"]);

        let mut full = small_config();
        full.sparsity = Some(SparsityMode::LayerWise(NmRatio::new(2, 4).unwrap()));
        full.enable_dram = true;
        full.enable_layout = true;
        full.enable_energy = true;
        let pipeline = PipelineBuilder::new(full).build();
        assert_eq!(
            pipeline.stage_names(),
            ["sparsify", "compute", "dram", "layout", "sparse", "energy"]
        );
    }

    #[test]
    fn run_layer_produces_a_complete_result() {
        let mut config = small_config();
        config.enable_energy = true;
        let pipeline = PipelineBuilder::new(config).build();
        let r = pipeline.run_layer("l", GemmShape::new(32, 32, 32));
        assert!(r.total_cycles() > 0);
        assert!(r.energy.is_some() && r.dram.is_none() && r.layout.is_none());
    }

    #[test]
    fn profiler_counts_every_stage_once_per_layer() {
        let mut config = small_config();
        config.enable_dram = true;
        let pipeline = PipelineBuilder::new(config).profile_stages(true).build();
        for i in 0..3 {
            pipeline.run_layer(&format!("l{i}"), GemmShape::new(16, 16, 16));
        }
        let profile = pipeline.profile().expect("profiling enabled");
        assert_eq!(profile.len(), 2);
        for t in &profile {
            assert_eq!(t.calls, 3, "{}", t.stage);
        }
        // The compute stage does the heavy lifting; it cannot be free.
        assert!(profile[0].nanos > 0);
    }

    #[test]
    fn custom_stage_sees_the_compute_product() {
        struct AssertStage;
        impl LayerStage for AssertStage {
            fn name(&self) -> &'static str {
                "assert"
            }
            fn run(&self, _env: &StageEnv, ctx: &mut LayerCtx) {
                assert!(ctx.report.is_some(), "compute ran first");
            }
        }
        let pipeline = PipelineBuilder::new(small_config())
            .with_stage(Box::new(AssertStage))
            .build();
        assert_eq!(pipeline.stage_names(), ["compute", "assert"]);
        pipeline.run_layer("l", GemmShape::new(8, 8, 8));
    }
}
