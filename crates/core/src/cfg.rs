//! SCALE-Sim configuration-file parsing.
//!
//! v2/v3 configure runs through INI-style `.cfg` files:
//!
//! ```text
//! [general]
//! run_name = my_run
//!
//! [architecture_presets]
//! ArrayHeight : 32
//! ArrayWidth  : 32
//! IfmapSramSzkB : 512
//! FilterSramSzkB : 512
//! OfmapSramSzkB : 256
//! Dataflow : ws
//! Bandwidth : 10
//!
//! [sparsity]
//! SparsitySupport : true
//! SparseRep : ellpack_block
//! OptimizedMapping : false
//! BlockSize : 4
//! ```
//!
//! Both `:` and `=` separators are accepted, keys are case-insensitive,
//! and the `[sparsity]` section implements the v3 knobs of §IV-B. The
//! `[scaleout]` section configures multi-chip execution (chip count,
//! fabric, link bandwidth/latency, parallelization strategy — see
//! `docs/SCALEOUT.md`):
//!
//! ```text
//! [scaleout]
//! Chips : 8
//! Fabric : ring
//! LinkGbps : 100
//! LinkLatency : 500
//! Strategy : data
//! Microbatches : 4
//! ```

use crate::config::{ScaleSimConfig, SparsityMode};
use scalesim_collective::{FabricTag, ScaleoutSpec, Strategy};
use scalesim_llm::{LlmRunSpec, LlmSpec, MoeSpec, Phase};
use scalesim_mem::DramSpec;
use scalesim_sparse::{NmRatio, SparseFormat};
use scalesim_systolic::{ArrayShape, Dataflow, MemoryConfig, SimError};

fn parse_kv(line: &str) -> Option<(String, String)> {
    let sep = line.find([':', '='])?;
    let key = line[..sep].trim().to_ascii_lowercase();
    let val = line[sep + 1..].trim().to_string();
    if key.is_empty() || val.is_empty() {
        None
    } else {
        Some((key, val))
    }
}

/// Parses a SCALE-Sim `.cfg` string into a [`ScaleSimConfig`].
///
/// Unknown or misspelled keys are **rejected** with an error naming the
/// key and its section — a typo like `ArrayHieght` silently inheriting
/// the default would invalidate a whole study (the sweep-spec parser
/// applies the same policy). Malformed numeric values are errors too.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] naming the offending key.
pub fn parse_cfg(text: &str) -> Result<ScaleSimConfig, SimError> {
    let mut config = ScaleSimConfig::default();
    let mut section = String::new();
    let mut array_h = config.core.array.rows();
    let mut array_w = config.core.array.cols();
    let mut ifmap_kb = 1024usize;
    let mut filter_kb = 1024usize;
    let mut ofmap_kb = 256usize;
    let mut bandwidth = config.core.memory.dram_bandwidth;
    let mut dataflow = config.core.dataflow;
    // Sparsity knobs (§IV-B step 1).
    let mut sparsity_support = false;
    let mut optimized_mapping = false;
    let mut block_size = 4usize;
    let mut sparse_ratio: Option<NmRatio> = None;
    // Scale-out knobs: any [scaleout] key materializes the section with
    // its defaults, then overrides the named field.
    let mut scaleout: Option<ScaleoutSpec> = None;
    // LLM workload knobs: any [llm] key materializes the section (the
    // llama-7b prefill defaults), then overrides the named field.
    // `Preset` replaces the whole model spec, so it should come first.
    let mut llm: Option<LlmRunSpec> = None;

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].trim().to_ascii_lowercase();
            continue;
        }
        let Some((key, val)) = parse_kv(line) else {
            return Err(SimError::InvalidConfig(format!(
                "malformed line '{line}' (expected 'key : value')"
            )));
        };
        let num = |v: &str| -> Result<usize, SimError> {
            v.parse()
                .map_err(|_| SimError::InvalidConfig(format!("'{key}' is not an integer: {v}")))
        };
        let boolean = |v: &str| v.eq_ignore_ascii_case("true") || v == "1";
        match (section.as_str(), key.as_str()) {
            (_, "arrayheight") => array_h = num(&val)?,
            (_, "arraywidth") => array_w = num(&val)?,
            (_, "ifmapsramszkb") => ifmap_kb = num(&val)?,
            (_, "filtersramszkb") => filter_kb = num(&val)?,
            (_, "ofmapsramszkb") => ofmap_kb = num(&val)?,
            (_, "bandwidth" | "interfacebandwidth") => {
                // Upstream SCALE-Sim writes `InterfaceBandwidth : CALC`
                // in USER mode ("derive it"); keep the default then.
                if !val.eq_ignore_ascii_case("calc") {
                    bandwidth = val
                        .parse::<f64>()
                        .ok()
                        .filter(|b| b.is_finite() && *b > 0.0)
                        .ok_or_else(|| {
                            SimError::InvalidConfig(format!(
                                "'{key}' must be a positive number of words/cycle (or CALC): {val}"
                            ))
                        })?;
                }
            }
            (_, "dataflow") => {
                dataflow = match val.to_ascii_lowercase().as_str() {
                    "os" => Dataflow::OutputStationary,
                    "ws" => Dataflow::WeightStationary,
                    "is" => Dataflow::InputStationary,
                    other => {
                        return Err(SimError::InvalidConfig(format!(
                            "unknown dataflow '{other}' (expected os/ws/is)"
                        )))
                    }
                };
            }
            ("sparsity", "sparsitysupport") => sparsity_support = boolean(&val),
            ("sparsity", "optimizedmapping") => optimized_mapping = boolean(&val),
            ("sparsity", "blocksize") => block_size = num(&val)?,
            ("sparsity", "sparseratio") => {
                sparse_ratio = NmRatio::parse(&val);
                if sparse_ratio.is_none() {
                    return Err(SimError::InvalidConfig(format!(
                        "bad SparseRatio '{val}' (expected N:M with power-of-two M)"
                    )));
                }
            }
            ("scaleout", "chips") => {
                let n = num(&val)?;
                if n == 0 {
                    return Err(SimError::InvalidConfig("Chips must be at least 1".into()));
                }
                scaleout.get_or_insert_with(ScaleoutSpec::default).chips = n;
            }
            ("scaleout", "fabric") => {
                scaleout.get_or_insert_with(ScaleoutSpec::default).fabric =
                    FabricTag::parse(&val).map_err(SimError::InvalidConfig)?;
            }
            ("scaleout", "mesh") => {
                let dims = val
                    .split_once(['x', 'X'])
                    .and_then(|(r, c)| {
                        let r = r.trim().parse::<usize>().ok().filter(|&n| n > 0)?;
                        let c = c.trim().parse::<usize>().ok().filter(|&n| n > 0)?;
                        Some((r, c))
                    })
                    .ok_or_else(|| {
                        SimError::InvalidConfig(format!(
                            "bad Mesh '{val}' (expected RxC, e.g. 2x4)"
                        ))
                    })?;
                scaleout.get_or_insert_with(ScaleoutSpec::default).mesh = Some(dims);
            }
            ("scaleout", "linkgbps") => {
                let gbps = val
                    .parse::<f64>()
                    .ok()
                    .filter(|b| b.is_finite() && *b > 0.0)
                    .ok_or_else(|| {
                        SimError::InvalidConfig(format!(
                            "'{key}' must be a positive number of GB/s: {val}"
                        ))
                    })?;
                scaleout.get_or_insert_with(ScaleoutSpec::default).link_gbps = gbps;
            }
            ("scaleout", "linklatency") => {
                scaleout
                    .get_or_insert_with(ScaleoutSpec::default)
                    .link_latency = num(&val)? as u64;
            }
            ("scaleout", "strategy") => {
                scaleout.get_or_insert_with(ScaleoutSpec::default).strategy =
                    Strategy::parse(&val).map_err(SimError::InvalidConfig)?;
            }
            ("scaleout", "microbatches") => {
                let n = num(&val)?;
                if n == 0 {
                    return Err(SimError::InvalidConfig(
                        "Microbatches must be at least 1".into(),
                    ));
                }
                scaleout
                    .get_or_insert_with(ScaleoutSpec::default)
                    .microbatches = n;
            }
            ("scaleout", "clockghz") => {
                let ghz = val
                    .parse::<f64>()
                    .ok()
                    .filter(|c| c.is_finite() && *c > 0.0)
                    .ok_or_else(|| {
                        SimError::InvalidConfig(format!(
                            "'{key}' must be a positive clock in GHz: {val}"
                        ))
                    })?;
                scaleout.get_or_insert_with(ScaleoutSpec::default).clock_ghz = ghz;
            }
            ("llm", "preset") => {
                let spec = LlmSpec::preset(&val).ok_or_else(|| {
                    SimError::InvalidConfig(format!(
                        "unknown llm Preset '{val}' (supported: {})",
                        LlmSpec::preset_names().join(", ")
                    ))
                })?;
                llm.get_or_insert_with(LlmRunSpec::default).spec = spec;
            }
            ("llm", "phase") => {
                llm.get_or_insert_with(LlmRunSpec::default).phase =
                    Phase::parse(&val).map_err(SimError::InvalidConfig)?;
            }
            ("llm", "context") => {
                llm.get_or_insert_with(LlmRunSpec::default).context = Some(num(&val)?);
            }
            ("llm", "layers") => {
                llm.get_or_insert_with(LlmRunSpec::default).spec.layers = num(&val)?
            }
            ("llm", "dmodel") => {
                llm.get_or_insert_with(LlmRunSpec::default).spec.d_model = num(&val)?
            }
            ("llm", "heads") => llm.get_or_insert_with(LlmRunSpec::default).spec.heads = num(&val)?,
            ("llm", "kvheads") => {
                llm.get_or_insert_with(LlmRunSpec::default).spec.kv_heads = num(&val)?
            }
            ("llm", "dff") => llm.get_or_insert_with(LlmRunSpec::default).spec.d_ff = num(&val)?,
            ("llm", "vocab") => llm.get_or_insert_with(LlmRunSpec::default).spec.vocab = num(&val)?,
            ("llm", "seq") => llm.get_or_insert_with(LlmRunSpec::default).spec.seq = num(&val)?,
            ("llm", "batch") => llm.get_or_insert_with(LlmRunSpec::default).spec.batch = num(&val)?,
            ("llm", "dtypebytes") => {
                llm.get_or_insert_with(LlmRunSpec::default).spec.dtype_bytes = num(&val)?
            }
            ("llm", "gatedffn") => {
                llm.get_or_insert_with(LlmRunSpec::default).spec.gated_ffn = boolean(&val)
            }
            ("llm", "tiedembeddings") => {
                llm.get_or_insert_with(LlmRunSpec::default)
                    .spec
                    .tied_embeddings = boolean(&val)
            }
            ("llm", "experts") => {
                let spec = &mut llm.get_or_insert_with(LlmRunSpec::default).spec;
                let n = num(&val)?;
                match (&mut spec.moe, n) {
                    (moe, 0) => *moe = None,
                    (Some(moe), n) => moe.num_experts = n,
                    (moe @ None, n) => {
                        *moe = Some(MoeSpec {
                            num_experts: n,
                            top_k: 2.min(n),
                        })
                    }
                }
            }
            ("llm", "topk") => {
                let spec = &mut llm.get_or_insert_with(LlmRunSpec::default).spec;
                let n = num(&val)?;
                match &mut spec.moe {
                    Some(moe) => moe.top_k = n,
                    None => {
                        return Err(SimError::InvalidConfig(
                            "TopK requires Experts to be set first".into(),
                        ))
                    }
                }
            }
            ("dram", "model") => {
                let name = val.to_ascii_lowercase();
                let spec = DramSpec::by_name(&name).ok_or_else(|| {
                    SimError::InvalidConfig(format!(
                        "unknown dram Model '{val}' (supported: {})",
                        DramSpec::preset_names().join(", ")
                    ))
                })?;
                // Keep the default channel count and the paper's 1 GHz
                // core clock; the preset only swaps the device timing.
                config.dram =
                    crate::config::DramIntegration::for_spec(spec, config.dram.channels, 1.0e9);
            }
            ("sparsity", "sparserep") => {
                config.sparse_format = match val.to_ascii_lowercase().as_str() {
                    "csr" => SparseFormat::Csr,
                    "csc" => SparseFormat::Csc,
                    "ellpack_block" | "blocked_ellpack" | "ellpack" => SparseFormat::BlockedEllpack,
                    other => {
                        return Err(SimError::InvalidConfig(format!(
                            "unknown SparseRep '{other}'"
                        )))
                    }
                };
            }
            // Known upstream SCALE-Sim knobs this reproduction does not
            // model: accepted (so stock Python-tool .cfg files keep
            // working) but ignored. Everything else is a hard error —
            // the point is catching *misspellings* of supported keys.
            (_, "run_name" | "ifmapoffset" | "filteroffset" | "ofmapoffset" | "memorybanks") => {}
            (_, other) => {
                let place = if section.is_empty() {
                    "at top level".to_string()
                } else {
                    format!("in section [{section}]")
                };
                return Err(SimError::InvalidConfig(format!(
                    "unknown key '{other}' {place} (known keys: ArrayHeight, ArrayWidth, \
                     IfmapSramSzkB, FilterSramSzkB, OfmapSramSzkB, Dataflow, Bandwidth, \
                     run_name, IfmapOffset, FilterOffset, OfmapOffset, MemoryBanks; \
                     [sparsity]: SparsitySupport, SparseRep, OptimizedMapping, \
                     BlockSize, SparseRatio; \
                     [scaleout]: Chips, Fabric, Mesh, LinkGbps, LinkLatency, Strategy, \
                     Microbatches, ClockGhz; \
                     [dram]: Model; \
                     [llm]: Preset, Phase, Context, Layers, DModel, Heads, KvHeads, DFf, \
                     Vocab, Seq, Batch, DtypeBytes, GatedFfn, TiedEmbeddings, Experts, TopK)"
                )));
            }
        }
    }

    if array_h == 0 || array_w == 0 {
        return Err(SimError::InvalidConfig(
            "array dimensions must be non-zero".into(),
        ));
    }
    config.core.array = ArrayShape::new(array_h, array_w);
    config.core.dataflow = dataflow;
    config.core.memory = MemoryConfig::from_kilobytes(ifmap_kb, filter_kb, ofmap_kb, 2);
    config.core.memory.dram_bandwidth = bandwidth;
    if sparsity_support {
        // §IV-B: layer-wise uses SparsitySupport=true + OptimizedMapping=
        // false; row-wise sets OptimizedMapping=true with BlockSize = M.
        config.sparsity = Some(if optimized_mapping {
            SparsityMode::RowWise {
                block: block_size,
                seed: 0xC0FFEE,
            }
        } else {
            SparsityMode::LayerWise(
                sparse_ratio.unwrap_or_else(|| NmRatio::new(2, 4).expect("2:4 is valid")),
            )
        });
    }
    if let Some(spec) = &scaleout {
        // Fabric consistency (mesh dims vs chips, power-of-two switch)
        // is a parse-time failure: a bad [scaleout] section should fail
        // before any simulation, like every other config error.
        spec.fabric().map_err(SimError::InvalidConfig)?;
    }
    config.scaleout = scaleout;
    if let Some(run) = &llm {
        // Dimensional consistency (divisibility, MoE bounds) fails at
        // parse time too, mirroring the [scaleout] policy.
        run.spec.validate().map_err(SimError::InvalidConfig)?;
    }
    config.llm = llm;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[general]
run_name = tpu_like

[architecture_presets]
ArrayHeight : 128
ArrayWidth : 128
IfmapSramSzkB : 8192
FilterSramSzkB : 8192
OfmapSramSzkB : 2048
Dataflow : ws
Bandwidth : 20

[sparsity]
SparsitySupport : true
SparseRep : ellpack_block
OptimizedMapping : false
SparseRatio : 2:4
"#;

    #[test]
    fn parses_architecture_section() {
        let c = parse_cfg(SAMPLE).unwrap();
        assert_eq!(c.core.array, ArrayShape::new(128, 128));
        assert_eq!(c.core.dataflow, Dataflow::WeightStationary);
        assert_eq!(c.core.memory.ifmap_words, 8192 * 1024 / 2);
        assert_eq!(c.core.memory.dram_bandwidth, 20.0);
    }

    #[test]
    fn parses_layer_wise_sparsity() {
        let c = parse_cfg(SAMPLE).unwrap();
        match c.sparsity {
            Some(SparsityMode::LayerWise(r)) => assert_eq!(r.to_string(), "2:4"),
            other => panic!("expected layer-wise sparsity, got {other:?}"),
        }
        assert_eq!(c.sparse_format, SparseFormat::BlockedEllpack);
    }

    #[test]
    fn row_wise_via_optimized_mapping() {
        let text = "[sparsity]\nSparsitySupport = true\nOptimizedMapping = true\nBlockSize = 8\n";
        let c = parse_cfg(text).unwrap();
        match c.sparsity {
            Some(SparsityMode::RowWise { block, .. }) => assert_eq!(block, 8),
            other => panic!("expected row-wise, got {other:?}"),
        }
    }

    #[test]
    fn equals_separator_and_comments() {
        let text = "# comment\nArrayHeight = 16\n; another\nArrayWidth = 8\nDataflow = os\n";
        let c = parse_cfg(text).unwrap();
        assert_eq!(c.core.array, ArrayShape::new(16, 8));
        assert_eq!(c.core.dataflow, Dataflow::OutputStationary);
    }

    #[test]
    fn bad_dataflow_is_an_error() {
        assert!(parse_cfg("Dataflow : xyz\n").is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        assert!(parse_cfg("ArrayHeight : lots\n").is_err());
    }

    #[test]
    fn bad_bandwidth_is_an_error() {
        for bad in ["ten", "-1", "0", "inf", "NaN"] {
            let err = parse_cfg(&format!("Bandwidth : {bad}\n"))
                .unwrap_err()
                .to_string();
            assert!(err.contains("bandwidth"), "'{bad}' -> {err}");
        }
        assert_eq!(
            parse_cfg("Bandwidth : 2.5\n")
                .unwrap()
                .core
                .memory
                .dram_bandwidth,
            2.5
        );
    }

    #[test]
    fn unknown_keys_are_rejected_by_name() {
        let err = parse_cfg("SomeFutureKnob : 42\n").unwrap_err().to_string();
        assert!(err.contains("unknown key 'somefutureknob'"), "{err}");
        assert!(err.contains("at top level"), "{err}");
        assert!(err.contains("[dram]: Model"), "{err}");
    }

    #[test]
    fn dram_model_selects_the_named_preset() {
        let c = parse_cfg("[dram]\nModel : hbm2\n").unwrap();
        assert_eq!(c.dram.spec.name, DramSpec::hbm2().name);
        // The HBM2 command clock retimes the core:memory clock ratio.
        let mem_clock_hz = 1.0e12 / c.dram.spec.timing.tCK_ps as f64;
        assert!((c.dram.mem_cycles_per_core_cycle - mem_clock_hz / 1.0e9).abs() < 1e-9);
        // Case-insensitive like every other cfg value.
        let c = parse_cfg("[dram]\nModel : HBM2\n").unwrap();
        assert_eq!(c.dram.spec.name, DramSpec::hbm2().name);
    }

    #[test]
    fn unknown_dram_model_error_names_the_full_vocabulary() {
        let err = parse_cfg("[dram]\nModel : ddr9\n").unwrap_err().to_string();
        assert!(err.contains("unknown dram Model 'ddr9'"), "{err}");
        for name in DramSpec::preset_names() {
            assert!(err.contains(name), "vocabulary misses {name}: {err}");
        }
    }

    #[test]
    fn misspelled_key_error_names_the_section() {
        let err = parse_cfg("[architecture_presets]\nArrayHieght : 32\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown key 'arrayhieght'"), "{err}");
        assert!(err.contains("[architecture_presets]"), "{err}");
        // The error lists the accepted spellings so the fix is obvious.
        assert!(err.contains("ArrayHeight"), "{err}");
    }

    #[test]
    fn sparsity_knob_outside_its_section_is_rejected() {
        let err = parse_cfg("SparsitySupport : true\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown key 'sparsitysupport'"), "{err}");
    }

    #[test]
    fn run_name_is_accepted_metadata() {
        let c =
            parse_cfg("[general]\nrun_name = my_run\nArrayHeight : 16\nArrayWidth : 16\n").unwrap();
        assert_eq!(c.core.array, ArrayShape::new(16, 16));
    }

    #[test]
    fn stock_upstream_cfg_keys_still_parse() {
        // The unmodified Python-tool presets carry operand offsets, a
        // bank count and `InterfaceBandwidth : CALC`; they must keep
        // working under the strict parser.
        let c = parse_cfg(
            "[general]\nrun_name = scale_example_run\n\
             [architecture_presets]\nArrayHeight : 32\nArrayWidth : 32\n\
             IfmapSramSzkB : 64\nFilterSramSzkB : 64\nOfmapSramSzkB : 64\n\
             IfmapOffset : 0\nFilterOffset : 10000000\nOfmapOffset : 20000000\n\
             Dataflow : os\nBandwidth : 10\nMemoryBanks : 1\n\
             [run_presets]\nInterfaceBandwidth : CALC\n",
        )
        .unwrap();
        assert_eq!(c.core.array, ArrayShape::new(32, 32));
        assert_eq!(c.core.memory.dram_bandwidth, 10.0, "CALC keeps Bandwidth");
    }

    #[test]
    fn scaleout_section_parses_all_knobs() {
        let c = parse_cfg(
            "[scaleout]\nChips : 16\nFabric : mesh\nMesh : 4x4\nLinkGbps : 200\n\
             LinkLatency : 250\nStrategy : tensor\nMicrobatches : 8\nClockGhz : 1.5\n",
        )
        .unwrap();
        let so = c.scaleout.unwrap();
        assert_eq!(so.chips, 16);
        assert_eq!(so.fabric, FabricTag::Mesh);
        assert_eq!(so.mesh, Some((4, 4)));
        assert_eq!(so.link_gbps, 200.0);
        assert_eq!(so.link_latency, 250);
        assert_eq!(so.strategy, Strategy::TensorParallel);
        assert_eq!(so.microbatches, 8);
        assert_eq!(so.clock_ghz, 1.5);
    }

    #[test]
    fn scaleout_defaults_fill_unset_knobs() {
        let c = parse_cfg("[scaleout]\nChips : 4\n").unwrap();
        let so = c.scaleout.unwrap();
        assert_eq!(so.chips, 4);
        assert_eq!(so.strategy, Strategy::DataParallel);
        assert_eq!(so.link_gbps, 100.0);
        // No [scaleout] section at all leaves the config single-chip.
        assert!(parse_cfg("ArrayHeight : 8\n").unwrap().scaleout.is_none());
    }

    #[test]
    fn scaleout_errors_name_the_problem() {
        for (text, needle) in [
            ("[scaleout]\nChips : 0\n", "Chips"),
            ("[scaleout]\nFabric : torus\n", "'torus'"),
            ("[scaleout]\nMesh : 4\n", "bad Mesh"),
            ("[scaleout]\nLinkGbps : -5\n", "GB/s"),
            ("[scaleout]\nStrategy : zz\n", "'zz'"),
            ("[scaleout]\nMicrobatches : 0\n", "Microbatches"),
            ("[scaleout]\nClockGhz : 0\n", "GHz"),
            // Fabric consistency fails at parse time too.
            (
                "[scaleout]\nChips : 8\nFabric : mesh\nMesh : 3x3\n",
                "mesh 3x3",
            ),
            ("[scaleout]\nChips : 6\nFabric : switch\n", "power-of-two"),
        ] {
            let err = parse_cfg(text).unwrap_err().to_string();
            assert!(err.contains(needle), "'{text}' -> {err}");
        }
    }

    #[test]
    fn scaleout_keys_outside_their_section_are_rejected() {
        let err = parse_cfg("Chips : 8\n").unwrap_err().to_string();
        assert!(err.contains("unknown key 'chips'"), "{err}");
        // The unknown-key error now lists the [scaleout] vocabulary.
        assert!(err.contains("[scaleout]"), "{err}");
    }

    #[test]
    fn llm_section_parses_presets_and_overrides() {
        let c = parse_cfg(
            "[llm]\nPreset : llama-7b\nPhase : decode\nContext : 512\n\
             Seq : 1024\nBatch : 4\nKvHeads : 8\n",
        )
        .unwrap();
        let llm = c.llm.unwrap();
        assert_eq!(llm.spec.name, "llama-7b");
        assert_eq!(llm.phase, Phase::Decode);
        assert_eq!(llm.context, Some(512));
        assert_eq!(llm.spec.seq, 1024);
        assert_eq!(llm.spec.batch, 4);
        assert_eq!(llm.spec.kv_heads, 8);
        // No [llm] section leaves the config topology-driven.
        assert!(parse_cfg("ArrayHeight : 8\n").unwrap().llm.is_none());
    }

    #[test]
    fn llm_section_builds_custom_moe_models() {
        let c = parse_cfg(
            "[llm]\nLayers : 4\nDModel : 256\nHeads : 8\nKvHeads : 8\nDFf : 512\n\
             Vocab : 1000\nSeq : 64\nExperts : 4\nTopK : 2\nGatedFfn : true\n",
        )
        .unwrap();
        let llm = c.llm.unwrap();
        assert_eq!(llm.spec.layers, 4);
        assert_eq!(
            llm.spec.moe,
            Some(MoeSpec {
                num_experts: 4,
                top_k: 2
            })
        );
        assert_eq!(llm.phase, Phase::Prefill);
    }

    #[test]
    fn llm_errors_name_the_problem() {
        for (text, needle) in [
            ("[llm]\nPreset : gpt5\n", "unknown llm Preset 'gpt5'"),
            ("[llm]\nPhase : training\n", "unknown phase 'training'"),
            ("[llm]\nTopK : 2\n", "Experts"),
            // Validation runs at parse time: 4096 % 33 != 0.
            ("[llm]\nPreset : llama-7b\nHeads : 33\n", "divisible"),
            ("[llm]\nPreset : mixtral-8x7b\nTopK : 16\n", "top_k"),
        ] {
            let err = parse_cfg(text).unwrap_err().to_string();
            assert!(err.contains(needle), "'{text}' -> {err}");
        }
    }

    #[test]
    fn llm_keys_outside_their_section_are_rejected() {
        let err = parse_cfg("DModel : 4096\n").unwrap_err().to_string();
        assert!(err.contains("unknown key 'dmodel'"), "{err}");
        // The unknown-key error lists the [llm] vocabulary too.
        assert!(err.contains("[llm]"), "{err}");
        assert!(err.contains("KvHeads"), "{err}");
    }

    #[test]
    fn malformed_line_is_rejected() {
        let err = parse_cfg("just some words\n").unwrap_err().to_string();
        assert!(err.contains("malformed line"), "{err}");
    }
}
