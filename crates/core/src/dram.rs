//! The §V-B three-step main-memory flow.
//!
//! * **Step 1** — the systolic timing pass runs against ideal memory with a
//!   [`RecordingStore`], producing the demand trace (request cycle, word
//!   addresses, direction) exactly as the paper describes.
//! * **Step 2** — [`dram_analysis`] coalesces words into burst-aligned line
//!   requests, converts core cycles to memory cycles and replays them
//!   through the cycle-accurate DRAM model, yielding per-request
//!   round-trip latencies and memory statistics (throughput, row-buffer
//!   behaviour), with finite-queue back-pressure included.
//! * **Step 3** — [`LatencyReplayStore`] feeds those measured latencies
//!   back into a second systolic timing pass: the same deterministic
//!   sequence of prefetch/drain transactions now completes after its
//!   measured DRAM delay, producing the stall-aware end-to-end cycles.

use crate::config::DramIntegration;
use scalesim_mem::{
    replay_trace, AccessKind as MemAccess, DramConfig, DramEnergyBreakdown, MemStats, TraceRequest,
};
use scalesim_systolic::{
    timing, AccessKind, Addr, BackingStore, IdealBandwidthStore, MemorySummary, OperandKind,
    RecordingStore, TimingInputs, TraceRecorder,
};

/// Results of steps 2 and 3.
#[derive(Debug, Clone)]
pub struct DramAnalysis {
    /// Stall-aware memory summary from the step-3 re-run.
    pub summary: MemorySummary,
    /// DRAM statistics from the step-2 replay.
    pub stats: MemStats,
    /// Mean round-trip latency over all line requests (memory cycles).
    pub avg_latency: f64,
    /// Number of line requests replayed.
    pub line_requests: usize,
    /// Achieved memory throughput in MB/s.
    pub throughput_mbps: f64,
    /// IDD-model DRAM energy for the replay (activate/read/write/refresh/
    /// background breakdown).
    pub energy: DramEnergyBreakdown,
}

/// Per-transaction figures carried from step 2 into step 3.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasuredTransaction {
    /// Absolute arrival time of the last line's data, core cycles.
    pub arrival: u64,
    /// Line requests in the transaction.
    pub lines: u64,
    /// Mean in-memory service latency of its lines, core cycles.
    pub avg_service: f64,
    /// Worst line service latency, core cycles.
    pub max_service: u64,
}

/// Backing store that replays the transaction timings measured in step 2.
/// Transaction order is deterministic across timing passes, so the k-th
/// `fetch`/`drain` call corresponds to the k-th traced transaction.
///
/// Two effects bound each transaction's completion:
///
/// * **Open-loop arrival** — prefetch engines issue asynchronously, so
///   data arrives no earlier than the absolute time the DRAM replay
///   measured.
/// * **Finite request queues (§V-A2)** — the accelerator holds at most
///   `queue` requests in flight, so pumping `n` lines whose round trips
///   average `ℓ` cycles takes at least `n·ℓ/queue` cycles (Little's law);
///   this is what makes the paper's Fig. 10 queue sweep bite.
#[derive(Debug)]
pub struct LatencyReplayStore {
    transactions: Vec<MeasuredTransaction>,
    cursor: usize,
    read_queue: usize,
    write_queue: usize,
}

impl LatencyReplayStore {
    /// Builds the store from per-transaction measurements and the
    /// read/write request-queue capacities.
    pub fn new(
        transactions: Vec<MeasuredTransaction>,
        read_queue: usize,
        write_queue: usize,
    ) -> Self {
        Self {
            transactions,
            cursor: 0,
            read_queue: read_queue.max(1),
            write_queue: write_queue.max(1),
        }
    }

    fn next(&mut self, earliest: u64, queue: usize) -> u64 {
        let t = self
            .transactions
            .get(self.cursor)
            .copied()
            .unwrap_or_default();
        self.cursor += 1;
        let pump = (t.lines as f64 * t.avg_service / queue as f64).ceil() as u64;
        let queue_bound = earliest + pump.max(t.max_service.min(t.lines.max(1)));
        t.arrival.max(queue_bound).max(earliest + 1)
    }
}

impl BackingStore for LatencyReplayStore {
    fn fetch(&mut self, _op: OperandKind, earliest: u64, addrs: &[Addr]) -> u64 {
        let done = self.next(earliest, self.read_queue);
        if addrs.is_empty() {
            earliest
        } else {
            done
        }
    }

    fn drain(&mut self, _op: OperandKind, earliest: u64, addrs: &[Addr]) -> u64 {
        let done = self.next(earliest, self.write_queue);
        if addrs.is_empty() {
            earliest
        } else {
            done
        }
    }
}

/// Converts a word-granular trace into burst-aligned line requests,
/// returning `(requests_sorted_by_cycle, entry_of_each_request)`.
fn linearize(
    trace: &TraceRecorder,
    cfg: &DramIntegration,
    bytes_per_word: usize,
) -> (Vec<TraceRequest>, Vec<usize>) {
    let line_bytes = cfg.spec.org.burst_bytes() as u64;
    let ratio = cfg.mem_cycles_per_core_cycle;
    let mut tagged: Vec<(TraceRequest, usize)> = Vec::new();
    let mut lines: Vec<u64> = Vec::new();
    for (entry_idx, e) in trace.entries().iter().enumerate() {
        let mem_cycle = (e.issue as f64 * ratio) as u64;
        let kind = match e.kind {
            AccessKind::Read => MemAccess::Read,
            AccessKind::Write => MemAccess::Write,
        };
        // One DRAM burst per *distinct* line touched by the transaction
        // (the word order within a prefetch chunk interleaves operand
        // rows, so dedup must be set-based, not run-based).
        lines.clear();
        lines.extend(
            trace
                .addrs_of(e)
                .iter()
                .map(|&a| a * bytes_per_word as u64 / line_bytes),
        );
        lines.sort_unstable();
        lines.dedup();
        for &line in &lines {
            tagged.push((
                TraceRequest {
                    cycle: mem_cycle,
                    byte_addr: line * line_bytes,
                    kind,
                },
                entry_idx,
            ));
        }
    }
    tagged.sort_by_key(|(r, _)| r.cycle);
    let entries = tagged.iter().map(|&(_, i)| i).collect();
    let requests = tagged.into_iter().map(|(r, _)| r).collect();
    (requests, entries)
}

/// Runs steps 1–3 for one planned layer.
///
/// `inputs` is the planning-pass output; `bandwidth` is the ideal
/// bandwidth used for the step-1 trace generation (the v2 model);
/// `bytes_per_word` converts word addresses to bytes.
pub fn dram_analysis(
    inputs: &TimingInputs,
    bandwidth: f64,
    bytes_per_word: usize,
    cfg: &DramIntegration,
) -> DramAnalysis {
    // Step 1: ideal-memory timing pass, recording the transaction trace.
    let mut recorder = RecordingStore::new(IdealBandwidthStore::new(bandwidth));
    let _v2_summary = timing(inputs, &mut recorder);
    let trace = recorder.into_trace();
    let n_entries = trace.entries().len();

    // Step 2: replay through the DRAM simulator.
    let _span = scalesim_obs::span(scalesim_obs::Category::Dram, "re-time")
        .arg("entries", n_entries as u64);
    let (requests, entry_of) = linearize(&trace, cfg, bytes_per_word);
    let dram_cfg = DramConfig {
        spec: cfg.spec,
        channels: cfg.channels,
        mapping: cfg.mapping,
        read_queue: cfg.read_queue,
        write_queue: cfg.write_queue,
        ..DramConfig::default()
    };
    let replay = replay_trace(dram_cfg, &requests);

    // Scatter per-line measurements back to per-transaction figures
    // (arrival = max line completion; service stats for the queue model),
    // converted to core cycles.
    let ratio = cfg.mem_cycles_per_core_cycle;
    let mut tx = vec![MeasuredTransaction::default(); n_entries];
    let mut service_sum = vec![0f64; n_entries];
    for (slot, &entry) in entry_of.iter().enumerate() {
        let done_mem = requests[slot].cycle + replay.latencies[slot];
        let done_core = (done_mem as f64 / ratio).ceil() as u64;
        let service_core = (replay.service_latencies[slot] as f64 / ratio).ceil() as u64;
        let t = &mut tx[entry];
        t.arrival = t.arrival.max(done_core);
        t.lines += 1;
        t.max_service = t.max_service.max(service_core);
        service_sum[entry] += service_core as f64;
    }
    for (t, sum) in tx.iter_mut().zip(&service_sum) {
        if t.lines > 0 {
            t.avg_service = sum / t.lines as f64;
        }
    }

    // Step 3: stall-aware timing with measured arrivals and the finite
    // request queues.
    let mut store = LatencyReplayStore::new(tx, cfg.read_queue, cfg.write_queue);
    let summary = timing(inputs, &mut store);

    let clock_ps = cfg.spec.timing.tCK_ps;
    DramAnalysis {
        summary,
        avg_latency: replay.avg_latency(),
        line_requests: requests.len(),
        throughput_mbps: replay.stats.throughput_mbps(clock_ps),
        energy: DramEnergyBreakdown::from_stats(&cfg.spec, &replay.stats, cfg.channels),
        stats: replay.stats,
    }
}

/// §III × §V interaction: what happens when `cores` identical tensor
/// cores share one DRAM system.
///
/// The engine's multi-core mode splits ideal bandwidth statically
/// (`BW / cores`); this analysis replays the *interleaved* line traffic of
/// all cores (each core's addresses offset to a disjoint region, as under
/// a shared L2 with partitioned operands) through the cycle-accurate
/// controller, exposing the queueing and bank-conflict contention a
/// static split cannot see.
#[derive(Debug, Clone)]
pub struct SharedDramContention {
    /// Cores sharing the memory system.
    pub cores: usize,
    /// Mean round-trip latency when one core runs alone (memory cycles).
    pub solo_avg_latency: f64,
    /// Mean round-trip latency with all cores interleaved.
    pub shared_avg_latency: f64,
    /// Aggregate achieved throughput of the shared run in MB/s.
    pub shared_throughput_mbps: f64,
    /// DRAM statistics of the shared run.
    pub stats: MemStats,
}

impl SharedDramContention {
    /// Latency inflation factor caused by sharing (≥ ~1).
    pub fn latency_inflation(&self) -> f64 {
        if self.solo_avg_latency == 0.0 {
            1.0
        } else {
            self.shared_avg_latency / self.solo_avg_latency
        }
    }
}

/// Replays `cores` interleaved copies of one core's §V-B demand trace
/// through a shared DRAM system.
///
/// # Panics
///
/// Panics if `cores == 0`.
pub fn shared_dram_contention(
    inputs: &TimingInputs,
    bandwidth: f64,
    bytes_per_word: usize,
    cfg: &DramIntegration,
    cores: usize,
) -> SharedDramContention {
    assert!(cores > 0, "need at least one core");
    let mut recorder = RecordingStore::new(IdealBandwidthStore::new(bandwidth));
    let _ = timing(inputs, &mut recorder);
    let trace = recorder.into_trace();
    let (requests, _) = linearize(&trace, cfg, bytes_per_word);

    let dram_cfg = DramConfig {
        spec: cfg.spec,
        channels: cfg.channels,
        mapping: cfg.mapping,
        read_queue: cfg.read_queue,
        write_queue: cfg.write_queue,
        ..DramConfig::default()
    };
    let solo = replay_trace(dram_cfg, &requests);

    // Offset each core's copy into a disjoint address region so the
    // interleaved streams contend on channels/banks, not on rows.
    let region = requests
        .iter()
        .map(|r| r.byte_addr)
        .max()
        .unwrap_or(0)
        .next_power_of_two()
        .max(1 << 20);
    let mut shared: Vec<TraceRequest> = Vec::with_capacity(requests.len() * cores);
    for core in 0..cores as u64 {
        shared.extend(requests.iter().map(|r| TraceRequest {
            cycle: r.cycle,
            byte_addr: r.byte_addr + core * region,
            kind: r.kind,
        }));
    }
    shared.sort_by_key(|r| r.cycle);
    let shared_replay = replay_trace(dram_cfg, &shared);

    SharedDramContention {
        cores,
        solo_avg_latency: solo.avg_latency(),
        shared_avg_latency: shared_replay.avg_latency(),
        shared_throughput_mbps: shared_replay.stats.throughput_mbps(cfg.spec.timing.tCK_ps),
        stats: shared_replay.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_systolic::{ArrayShape, CoreSim, Dataflow, GemmShape, MemoryConfig, SimConfig};

    fn planned(gemm: GemmShape) -> TimingInputs {
        let mut cfg = SimConfig::builder()
            .array(ArrayShape::new(8, 8))
            .dataflow(Dataflow::WeightStationary)
            .build();
        cfg.memory = MemoryConfig::from_kilobytes(8, 8, 8, 2);
        CoreSim::new(cfg).plan_gemm(gemm).inputs
    }

    #[test]
    fn analysis_produces_consistent_summary() {
        let inputs = planned(GemmShape::new(64, 64, 64));
        let a = dram_analysis(&inputs, 10.0, 2, &DramIntegration::default());
        assert!(a.line_requests > 0);
        assert!(a.avg_latency > 0.0);
        assert!(a.stats.reads > 0);
        assert_eq!(
            a.summary.total_cycles,
            a.summary.ramp_up_cycles
                + a.summary.compute_cycles
                + a.summary.stall_cycles
                + a.summary.drain_tail_cycles
        );
        // The power model sees the same run: dynamic energy from the
        // replayed traffic, background from its duration.
        assert!(a.energy.read_pj > 0.0);
        assert!(a.energy.background_pj > 0.0);
        assert!(a.energy.avg_power_mw() > 0.0);
    }

    #[test]
    fn dram_is_slower_than_infinite_bandwidth() {
        let inputs = planned(GemmShape::new(64, 64, 64));
        let mut ideal = IdealBandwidthStore::new(1.0e9);
        let ideal_summary = timing(&inputs, &mut ideal);
        let a = dram_analysis(&inputs, 10.0, 2, &DramIntegration::default());
        assert!(
            a.summary.total_cycles >= ideal_summary.total_cycles,
            "DRAM-backed {} < ideal {}",
            a.summary.total_cycles,
            ideal_summary.total_cycles
        );
    }

    #[test]
    fn more_channels_do_not_hurt() {
        let inputs = planned(GemmShape::new(96, 96, 96));
        let one = dram_analysis(
            &inputs,
            10.0,
            2,
            &DramIntegration {
                channels: 1,
                ..Default::default()
            },
        );
        let four = dram_analysis(
            &inputs,
            10.0,
            2,
            &DramIntegration {
                channels: 4,
                ..Default::default()
            },
        );
        assert!(
            four.summary.total_cycles <= one.summary.total_cycles + one.summary.total_cycles / 10
        );
    }

    #[test]
    fn bigger_queue_never_slower() {
        let inputs = planned(GemmShape::new(96, 96, 96));
        let small = dram_analysis(
            &inputs,
            10.0,
            2,
            &DramIntegration {
                read_queue: 8,
                write_queue: 8,
                ..Default::default()
            },
        );
        let large = dram_analysis(
            &inputs,
            10.0,
            2,
            &DramIntegration {
                read_queue: 512,
                write_queue: 512,
                ..Default::default()
            },
        );
        assert!(large.summary.total_cycles <= small.summary.total_cycles);
    }

    #[test]
    fn sharing_a_channel_inflates_latency() {
        let inputs = planned(GemmShape::new(96, 96, 96));
        let cfg = DramIntegration::default();
        let one = shared_dram_contention(&inputs, 10.0, 2, &cfg, 1);
        let eight = shared_dram_contention(&inputs, 10.0, 2, &cfg, 8);
        // A single "shared" core is exactly the solo replay.
        assert!((one.latency_inflation() - 1.0).abs() < 1e-9);
        assert!(
            eight.latency_inflation() > 1.2,
            "8 cores on one DDR4 channel must contend: {}",
            eight.latency_inflation()
        );
        assert!(eight.stats.reads >= 8 * one.stats.reads / 2);
    }

    #[test]
    fn more_channels_relieve_contention() {
        let inputs = planned(GemmShape::new(96, 96, 96));
        let narrow = shared_dram_contention(&inputs, 10.0, 2, &DramIntegration::default(), 8);
        let wide = shared_dram_contention(
            &inputs,
            10.0,
            2,
            &DramIntegration {
                channels: 8,
                ..Default::default()
            },
            8,
        );
        // The inflation *ratio* is against a channel-dependent solo
        // baseline (8 solo channels are already fast), so compare the
        // absolute shared service quality: latency down, throughput up.
        assert!(
            wide.shared_avg_latency < narrow.shared_avg_latency,
            "8-channel shared latency ({}) should beat 1-channel ({})",
            wide.shared_avg_latency,
            narrow.shared_avg_latency
        );
        assert!(wide.shared_throughput_mbps > narrow.shared_throughput_mbps);
    }

    #[test]
    fn latency_replay_store_is_sequential() {
        let t = |arrival: u64| MeasuredTransaction {
            arrival,
            lines: 1,
            avg_service: 1.0,
            max_service: 1,
        };
        let mut s = LatencyReplayStore::new(vec![t(15), t(18)], 128, 128);
        // Data already arrived at 15 ≥ earliest 10.
        assert_eq!(s.fetch(OperandKind::Ifmap, 10, &[1]), 15);
        // Arrival 18 is in the past relative to earliest 20: floor of 1.
        assert_eq!(s.drain(OperandKind::Ofmap, 20, &[2]), 21);
        // Exhausted → floor of 1 cycle.
        assert_eq!(s.fetch(OperandKind::Ifmap, 30, &[3]), 31);
    }

    #[test]
    fn queue_limit_throttles_large_transactions() {
        // 1024 lines averaging 64-cycle round trips: a 32-deep queue can
        // pump ~0.5 lines/cycle → ≥ 2048 cycles; a 512-deep queue pumps
        // them in ~128.
        let t = MeasuredTransaction {
            arrival: 0,
            lines: 1024,
            avg_service: 64.0,
            max_service: 100,
        };
        let mut small = LatencyReplayStore::new(vec![t], 32, 32);
        let mut large = LatencyReplayStore::new(vec![t], 512, 512);
        let addrs = [1u64];
        let d_small = small.fetch(OperandKind::Ifmap, 0, &addrs);
        let d_large = large.fetch(OperandKind::Ifmap, 0, &addrs);
        assert_eq!(d_small, 2048);
        assert_eq!(d_large, 128);
    }
}
