//! Unified SCALE-Sim v3 configuration.

use scalesim_collective::ScaleoutSpec;
use scalesim_layout::LayoutSpec;
use scalesim_llm::LlmRunSpec;
use scalesim_mem::{AddressMapping, DramSpec};
use scalesim_multicore::{L2Config, PartitionGrid, PartitionScheme};
use scalesim_sparse::{NmRatio, SparseFormat};
use scalesim_systolic::SimConfig;

/// DRAM integration parameters (§V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramIntegration {
    /// Device specification.
    pub spec: DramSpec,
    /// Channels.
    pub channels: usize,
    /// Address interleaving.
    pub mapping: AddressMapping,
    /// Read request-queue entries (paper default 128).
    pub read_queue: usize,
    /// Write request-queue entries.
    pub write_queue: usize,
    /// Memory-clock cycles per core-clock cycle (DDR4-2400 command clock
    /// at 1.2 GHz over a 1 GHz core → 1.2).
    pub mem_cycles_per_core_cycle: f64,
}

impl DramIntegration {
    /// Builds an integration for a device with the clock ratio derived
    /// from the device's command clock against a `core_clock_hz` core.
    pub fn for_spec(spec: DramSpec, channels: usize, core_clock_hz: f64) -> Self {
        let mem_clock_hz = 1.0e12 / spec.timing.tCK_ps as f64;
        Self {
            spec,
            channels,
            mem_cycles_per_core_cycle: mem_clock_hz / core_clock_hz,
            ..Default::default()
        }
    }
}

impl Default for DramIntegration {
    fn default() -> Self {
        Self {
            spec: DramSpec::ddr4_2400_4gb(),
            channels: 1,
            mapping: AddressMapping::default(),
            read_queue: 128,
            write_queue: 128,
            mem_cycles_per_core_cycle: 1.2,
        }
    }
}

/// Data-layout integration parameters (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutIntegration {
    /// Total on-chip bandwidth in elements per cycle.
    pub total_bandwidth: usize,
    /// Number of SRAM banks the bandwidth is split across.
    pub num_banks: usize,
    /// Read ports per bank.
    pub ports_per_bank: usize,
    /// Layout of the ifmap operand (matrix `M×K`).
    pub ifmap_layout: LayoutSpec,
    /// Layout of the filter operand (matrix `K×N`).
    pub filter_layout: LayoutSpec,
    /// Layout of the ofmap operand (matrix `M×N`).
    pub ofmap_layout: LayoutSpec,
    /// How long a fetched line stays in the array-edge line buffers, in
    /// cycles (0 = no reuse; each cycle re-fetches its lines).
    pub line_buffer_cycles: u64,
}

impl LayoutIntegration {
    /// Row-major layouts with the line width equal to the total bandwidth.
    pub fn row_major(total_bandwidth: usize, num_banks: usize) -> Self {
        Self {
            total_bandwidth,
            num_banks,
            ports_per_bank: 1,
            ifmap_layout: LayoutSpec::row_major(total_bandwidth),
            filter_layout: LayoutSpec::row_major(total_bandwidth),
            ofmap_layout: LayoutSpec::row_major(total_bandwidth),
            line_buffer_cycles: 64,
        }
    }

    /// Layouts matched to a dataflow's streaming direction — the
    /// bank-conflict-minimizing organization a layout-aware compiler
    /// would pick (the paper's FEATHER-style motivation):
    ///
    /// * OS streams `A` along `k` (row-major) and `B` along `k`
    ///   (column-major);
    /// * WS streams `A` along `m` (column-major);
    /// * IS streams `B` along `n` (row-major).
    pub fn matched(
        dataflow: scalesim_systolic::Dataflow,
        total_bandwidth: usize,
        num_banks: usize,
    ) -> Self {
        use scalesim_systolic::Dataflow::*;
        let mut cfg = Self::row_major(total_bandwidth, num_banks);
        match dataflow {
            OutputStationary => {
                cfg.filter_layout = LayoutSpec::column_major(total_bandwidth);
            }
            WeightStationary => {
                cfg.ifmap_layout = LayoutSpec::column_major(total_bandwidth);
            }
            InputStationary => {
                cfg.ifmap_layout = LayoutSpec::column_major(total_bandwidth);
                cfg.ofmap_layout = LayoutSpec::column_major(total_bandwidth);
            }
        }
        cfg
    }
}

impl Default for LayoutIntegration {
    fn default() -> Self {
        Self::row_major(64, 4)
    }
}

/// Sparsity configuration (§IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparsityMode {
    /// One N:M ratio for the whole layer (`SparsitySupport` knob).
    LayerWise(NmRatio),
    /// Randomized N ≤ M/2 per block (`OptimizedMapping` + `BlockSize`).
    RowWise {
        /// Block size `M`.
        block: usize,
        /// RNG seed for the per-block N draw.
        seed: u64,
    },
}

/// Multi-core configuration subset used by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreIntegration {
    /// Core grid.
    pub grid: PartitionGrid,
    /// Partitioning scheme.
    pub scheme: PartitionScheme,
    /// Shared L2 (None = private L1s).
    pub l2: Option<L2Config>,
}

/// The full v3 configuration: the v2 core plus the five feature toggles.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSimConfig {
    /// Single-core parameters (array, dataflow, SRAM, bandwidth).
    pub core: SimConfig,
    /// Multi-core feature (§III); None = single core.
    pub multicore: Option<MultiCoreIntegration>,
    /// Sparsity feature (§IV); None = dense.
    pub sparsity: Option<SparsityMode>,
    /// Sparse representation used for storage accounting.
    pub sparse_format: SparseFormat,
    /// DRAM feature (§V); used when `enable_dram`.
    pub dram: DramIntegration,
    /// Whether the three-step DRAM flow runs.
    pub enable_dram: bool,
    /// Layout feature (§VI); used when `enable_layout`.
    pub layout: LayoutIntegration,
    /// Whether layout bank-conflict analysis runs.
    pub enable_layout: bool,
    /// Whether energy/power estimation runs (§VII).
    pub enable_energy: bool,
    /// Multi-chip scale-out configuration (`[scaleout]` cfg section);
    /// None = single chip. Only the `scalesim scaleout` flow and
    /// scale-out sweep points consult it.
    pub scaleout: Option<ScaleoutSpec>,
    /// LLM workload generation (`[llm]` cfg section); None = the
    /// topology comes from a CSV/registry. Consulted by the
    /// `scalesim llm` flow and the llm sweep axes.
    pub llm: Option<LlmRunSpec>,
}

impl Default for ScaleSimConfig {
    /// v2-parity defaults: compute + ideal-bandwidth memory only.
    fn default() -> Self {
        Self {
            core: SimConfig::default(),
            multicore: None,
            sparsity: None,
            sparse_format: SparseFormat::BlockedEllpack,
            dram: DramIntegration::default(),
            enable_dram: false,
            layout: LayoutIntegration::default(),
            enable_layout: false,
            enable_energy: false,
            scaleout: None,
            llm: None,
        }
    }
}

impl ScaleSimConfig {
    /// Everything on: the full v3 pipeline.
    pub fn full() -> Self {
        Self {
            enable_dram: true,
            enable_layout: true,
            enable_energy: true,
            ..Self::default()
        }
    }

    /// A TPU-like configuration (§V-C1: "SCALE-Sim v3 is run with the
    /// Google TPU configuration"): 128×128 WS array, 24 MB of SRAM.
    pub fn tpu_like() -> Self {
        use scalesim_systolic::{ArrayShape, Dataflow, MemoryConfig};
        let mut cfg = Self::default();
        cfg.core = SimConfig::builder()
            .array(ArrayShape::new(128, 128))
            .dataflow(Dataflow::WeightStationary)
            .memory(MemoryConfig::from_kilobytes(8192, 8192, 2048, 2))
            .build();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_v2_parity() {
        let c = ScaleSimConfig::default();
        assert!(!c.enable_dram && !c.enable_layout && !c.enable_energy);
        assert!(c.multicore.is_none() && c.sparsity.is_none());
    }

    #[test]
    fn full_enables_everything() {
        let c = ScaleSimConfig::full();
        assert!(c.enable_dram && c.enable_layout && c.enable_energy);
    }

    #[test]
    fn tpu_like_shape() {
        let c = ScaleSimConfig::tpu_like();
        assert_eq!(c.core.array.rows(), 128);
        assert_eq!(
            c.core.dataflow,
            scalesim_systolic::Dataflow::WeightStationary
        );
        assert!(c.core.validate().is_ok());
    }

    #[test]
    fn dram_defaults_match_paper() {
        let d = DramIntegration::default();
        assert_eq!(d.read_queue, 128);
        assert_eq!(d.write_queue, 128);
        assert_eq!(d.spec.org.capacity_bytes(), 512 * 1024 * 1024); // 4 Gb
    }
}
