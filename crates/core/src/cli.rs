//! Command-line parsing for the `scalesim` binary.
//!
//! Lives in the library (rather than the binary) so argument handling is
//! unit-testable: in particular, *any* unknown flag or subcommand must
//! produce an error (never be silently ignored), which the binary turns
//! into the usage string and a non-zero exit. See [`parse_cli`].
//!
//! Five commands:
//!
//! * `scalesim …` — one simulation of one topology ([`RunArgs`]).
//! * `scalesim llm …` — simulate an LLM preset or `[llm]` model spec,
//!   expanded to its per-block GEMMs ([`LlmArgs`]); model reference in
//!   `docs/LLM.md`.
//! * `scalesim sweep …` — a design-space sweep over a spec-file grid
//!   ([`SweepArgs`]); full formats in `docs/CLI.md`.
//! * `scalesim scaleout …` — a multi-chip scale-out simulation
//!   ([`ScaleoutArgs`]); model reference in `docs/SCALEOUT.md`.
//! * `scalesim serve …` — a persistent JSON-lines batch service over
//!   stdio or a TCP socket ([`ServeArgs`]); protocol in `docs/API.md`.

use std::path::PathBuf;

/// Usage string for the single-run command (also the `-h` output).
pub const USAGE: &str = "usage: scalesim {-t <topology.csv> | -w <workload>} [-c <config.cfg>]
                [-p <outdir>] [--gemm] [--dram] [--energy] [--layout]
                [--area] [--profile-stages] [--trace <file>] [-v]
       scalesim llm [-w <preset>] [-c <config.cfg>] [options]
       scalesim sweep -s <spec> [-c <config.cfg>] [-t <topology.csv>]...
                [-p <outdir>] [--shards <n>] [-v]
       scalesim scaleout {-t <topology.csv> | -w <workload>}
                [-c <config.cfg>] [options]
       scalesim serve [--stdio | --listen <addr>] [--metrics-addr <addr>]
       scalesim --version

  -t <file>   topology CSV (conv rows: name,ifh,ifw,fh,fw,c,n,stride;
              with --gemm: name,M,K,N)
  -w <name>   built-in workload instead of -t: a CNN/ViT registry name
              or an llm preset, optionally ':prefill'/':decode'-suffixed
              (e.g. llama-7b:decode); unknown names list the vocabulary
  -c <file>   SCALE-Sim .cfg architecture file (default: 32x32 OS core)
  -p <dir>    output directory for report CSVs (default: .)
  --gemm      parse the topology as GEMM rows
  --dram      enable the cycle-accurate DRAM flow (paper SecV)
  --energy    enable energy/power estimation (paper SecVII)
  --layout    enable bank-conflict layout analysis (paper SecVI)
  --area      emit the silicon-area report for the configured core
  --profile-stages  print per-stage cycle/time accounting after the run
              and write STAGE_PROFILE.json to the output directory
  --trace <file>  record a Chrome trace-event timeline of the run and
              write it to <file> (open in Perfetto / chrome://tracing;
              docs/OBSERVABILITY.md); accepted by every subcommand
  -v          print per-layer results while running
  --version   print the scalesim version and build hash

  llm         simulate an LLM model spec expanded to its per-block GEMMs
              (prefill/decode phases, KV-cache, MoE); see
              'scalesim llm -h' and docs/LLM.md
  sweep       run a design-space-exploration grid; see 'scalesim sweep -h'
              and docs/CLI.md for the spec format
  scaleout    simulate multi-chip parallel execution (data/tensor/pipeline
              parallelism over a ring/mesh/switch fabric); see
              'scalesim scaleout -h' and docs/SCALEOUT.md
  serve       answer JSON-lines simulation requests forever; see
              'scalesim serve -h' and docs/API.md for the protocol";

/// Usage string for the `llm` subcommand.
pub const LLM_USAGE: &str = "usage: scalesim llm [-w <preset>] [-c <config.cfg>] [-p <outdir>]
                [--phase prefill|decode] [--seq <n>] [--batch <n>]
                [--context <n>] [--dram] [--energy] [--layout] [-v]

  -w <preset>      model preset: gpt2-xl | llama-7b | llama-70b |
                   mixtral-8x7b (overrides the cfg's [llm] model; one of
                   -w or an [llm] cfg section is required)
  -c <file>        architecture .cfg; its [llm] section sets the model
                   defaults the flags below override (docs/LLM.md)
  -p <dir>         output directory for report CSVs (default: .)
  --phase <p>      prefill (M = batch x seq, compute-bound) or decode
                   (M = batch skinny GEMMs against the KV cache)
  --seq <n>        prompt/sequence length override
  --batch <n>      batch size override
  --context <n>    decode context length (default: seq)
  --dram / --energy / --layout   feature flags, as for a plain run
  --trace <file>   write a Chrome trace-event timeline to <file>
  -v               print per-layer results while running

The generated topology is deterministic: reports are byte-identical
for any SCALESIM_THREADS and identical to an 'llm' request over
'scalesim serve'.";

/// Usage string for the `scaleout` subcommand.
pub const SCALEOUT_USAGE: &str = "usage: scalesim scaleout {-t <topology.csv> | -w <workload>}
                [-c <config.cfg>] [-p <outdir>] [--gemm] [--chips <n>]
                [--strategy data|tensor|pipeline]
                [--fabric ring|mesh|switch] [--link-gbps <GB/s>] [-v]

  -t <file>        topology CSV (format auto-detected, conv or GEMM;
                   --gemm forces GEMM rows)
  -w <name>        built-in workload instead of -t: a CNN/ViT registry
                   name or an llm preset with optional ':prefill'/
                   ':decode' suffix (e.g. llama-7b:decode)
  -c <file>        architecture .cfg; its [scaleout] section sets the
                   defaults the flags below override (docs/SCALEOUT.md)
  -p <dir>         output directory for SCALEOUT_REPORT.csv (default: .)
  --chips <n>      number of chips (default: cfg [scaleout] or 8)
  --strategy <s>   data | tensor | pipeline parallelism
  --fabric <f>     ring | mesh | switch interconnect
  --link-gbps <g>  per-link bandwidth in GB/s
  --trace <file>   write a Chrome trace-event timeline to <file>
  -v               print per-layer results while running

The report is deterministic: byte-identical for any SCALESIM_THREADS,
and identical to the report a 'scaleout' request over 'scalesim serve'
returns for the same inputs.";

/// Usage string for the `sweep` subcommand.
pub const SWEEP_USAGE: &str = "usage: scalesim sweep -s <spec> [-c <config.cfg>]
                [-t <topology.csv>]... [-p <outdir>] [--shards <n>] [-v]

  -s <file>      sweep spec: a cfg-style grid of array/dataflow/sram_kb/
                 bandwidth/cores/dram/energy/layout values plus workload
                 topologies (see docs/CLI.md)
  -c <file>      base architecture .cfg the grid overrides (default:
                 32x32 OS core)
  -t <file>      additional topology CSV (repeatable; format
                 auto-detected, conv or GEMM); appended to the spec's
                 [workloads] list
  -p <dir>       output directory for SWEEP_REPORT.{csv,json} (default: .)
  --shards <n>   split the grid into n round-robin shards (default 1);
                 output is byte-identical for any shard count
  --trace <file> write a Chrome trace-event timeline to <file>
  -v             print per-run results while sweeping

Reports are deterministic: byte-identical for any SCALESIM_THREADS and
any --shards value.";

/// Usage string for the `serve` subcommand.
pub const SERVE_USAGE: &str = "usage: scalesim serve [--stdio | --listen <addr>]
                [--metrics-addr <addr>] [--trace <file>]

  --stdio          answer one JSON request per stdin line with one JSON
                   response per stdout line until EOF (the default)
  --listen <addr>  accept TCP connections on <addr> (e.g. 127.0.0.1:7878
                   or 127.0.0.1:0 for an ephemeral port), each speaking
                   the same JSON-lines protocol; concurrent connections
                   are capped at SCALESIM_THREADS
  --metrics-addr <addr>  expose Prometheus text metrics over HTTP at
                   <addr> (GET any path; docs/OBSERVABILITY.md)
  --trace <file>   enable span recording and write a Chrome trace-event
                   timeline to <file> on shutdown; a 'trace' request
                   returns the same timeline live (docs/API.md)

One process keeps one plan cache: repeated workloads across requests
and connections skip re-planning. Responses are byte-identical to the
one-shot CLI's report files. Protocol reference: docs/API.md.";

/// Arguments of the single-run command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArgs {
    /// Architecture `.cfg` path (None = built-in default core).
    pub config: Option<PathBuf>,
    /// Topology CSV path (exactly one of this and `workload`).
    pub topology: Option<PathBuf>,
    /// Built-in workload name (exactly one of this and `topology`).
    pub workload: Option<String>,
    /// Report output directory.
    pub out_dir: PathBuf,
    /// Parse the topology as GEMM rows.
    pub gemm: bool,
    /// Enable the cycle-accurate DRAM flow.
    pub dram: bool,
    /// Enable energy estimation.
    pub energy: bool,
    /// Enable layout analysis.
    pub layout: bool,
    /// Emit the area report.
    pub area: bool,
    /// Print per-stage call/time accounting after the run.
    pub profile_stages: bool,
    /// Chrome trace-event output path (`None` = tracing disabled).
    pub trace: Option<PathBuf>,
    /// Per-layer progress on stderr.
    pub verbose: bool,
}

/// Arguments of the `sweep` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepArgs {
    /// Sweep spec path.
    pub spec: PathBuf,
    /// Base architecture `.cfg` path (None = built-in default core).
    pub config: Option<PathBuf>,
    /// Topology CSVs appended to the spec's workload list.
    pub topologies: Vec<PathBuf>,
    /// Report output directory.
    pub out_dir: PathBuf,
    /// Shard count for the executor.
    pub shards: usize,
    /// Chrome trace-event output path (`None` = tracing disabled).
    pub trace: Option<PathBuf>,
    /// Per-run progress on stderr.
    pub verbose: bool,
}

/// Arguments of the `scaleout` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleoutArgs {
    /// Architecture `.cfg` path (None = built-in default core).
    pub config: Option<PathBuf>,
    /// Topology CSV path (exactly one of this and `workload`).
    pub topology: Option<PathBuf>,
    /// Built-in workload name (exactly one of this and `topology`).
    pub workload: Option<String>,
    /// Report output directory.
    pub out_dir: PathBuf,
    /// Parse the topology as GEMM rows.
    pub gemm: bool,
    /// Chip-count override.
    pub chips: Option<usize>,
    /// Strategy override (validated by the service).
    pub strategy: Option<String>,
    /// Fabric override (validated by the service).
    pub fabric: Option<String>,
    /// Per-link bandwidth override, GB/s.
    pub link_gbps: Option<f64>,
    /// Chrome trace-event output path (`None` = tracing disabled).
    pub trace: Option<PathBuf>,
    /// Per-layer progress on stderr.
    pub verbose: bool,
}

/// Arguments of the `llm` subcommand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LlmArgs {
    /// Architecture `.cfg` path (None = built-in default core).
    pub config: Option<PathBuf>,
    /// Model preset name (overrides the cfg's `[llm]` model; one of
    /// this or an `[llm]` section is required, enforced at prepare
    /// time).
    pub workload: Option<String>,
    /// Phase override (validated by the service).
    pub phase: Option<String>,
    /// Sequence-length override.
    pub seq: Option<usize>,
    /// Batch-size override.
    pub batch: Option<usize>,
    /// Decode context-length override.
    pub context: Option<usize>,
    /// Report output directory.
    pub out_dir: PathBuf,
    /// Enable the cycle-accurate DRAM flow.
    pub dram: bool,
    /// Enable energy estimation.
    pub energy: bool,
    /// Enable layout analysis.
    pub layout: bool,
    /// Chrome trace-event output path (`None` = tracing disabled).
    pub trace: Option<PathBuf>,
    /// Per-layer progress on stderr.
    pub verbose: bool,
}

/// Arguments of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeArgs {
    /// TCP listen address (`None` = stdio mode).
    pub listen: Option<String>,
    /// Prometheus metrics HTTP address (`None` = no exposition).
    pub metrics_addr: Option<String>,
    /// Chrome trace-event output path written on shutdown (`None` =
    /// tracing disabled; a `trace` request can still read empty rings).
    pub trace: Option<PathBuf>,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Simulate one topology.
    Run(RunArgs),
    /// Simulate an LLM model spec.
    Llm(LlmArgs),
    /// Run a design-space sweep.
    Sweep(SweepArgs),
    /// Simulate a multi-chip scale-out execution.
    Scaleout(ScaleoutArgs),
    /// Serve JSON-lines simulation requests persistently.
    Serve(ServeArgs),
    /// Print the version and exit (`--version` / `-V`).
    Version,
}

/// The version line `scalesim --version` prints: the workspace version
/// plus the git hash when the build stamped one (`SCALESIM_GIT_HASH` at
/// compile time; release/CI builds set it, ad-hoc builds report
/// `unknown`).
pub fn version_string() -> String {
    format!(
        "scalesim {} (git {})",
        env!("CARGO_PKG_VERSION"),
        option_env!("SCALESIM_GIT_HASH").unwrap_or("unknown"),
    )
}

/// A parse failure: the message to print (empty for a plain `-h`) and
/// the usage text to follow it with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Error message; empty when the user asked for help.
    pub message: String,
    /// The relevant usage string ([`USAGE`] or [`SWEEP_USAGE`]).
    pub usage: &'static str,
}

impl CliError {
    fn new(message: impl Into<String>, usage: &'static str) -> Self {
        Self {
            message: message.into(),
            usage,
        }
    }
}

/// Parses a full argument vector (including `argv[0]`).
///
/// Every unknown flag, unknown subcommand, or flag missing its value is
/// an error carrying the appropriate usage string — the binary prints it
/// and exits non-zero.
///
/// # Errors
///
/// Returns a [`CliError`]; an empty `message` means help was requested
/// explicitly (`-h`/`--help`).
pub fn parse_cli<I>(argv: I) -> Result<Command, CliError>
where
    I: IntoIterator<Item = String>,
{
    let mut argv = argv.into_iter();
    let _bin = argv.next();
    let args: Vec<String> = argv.collect();
    // Like -h, --version anywhere aborts normal parsing and wins.
    if args.iter().any(|a| a == "--version" || a == "-V") {
        return Ok(Command::Version);
    }
    if args.first().map(String::as_str) == Some("llm") {
        return parse_llm(args.into_iter().skip(1)).map(Command::Llm);
    }
    if args.first().map(String::as_str) == Some("sweep") {
        return parse_sweep(args.into_iter().skip(1)).map(Command::Sweep);
    }
    if args.first().map(String::as_str) == Some("scaleout") {
        return parse_scaleout(args.into_iter().skip(1)).map(Command::Scaleout);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return parse_serve(args.into_iter().skip(1)).map(Command::Serve);
    }
    parse_run(args.into_iter()).map(Command::Run)
}

fn parse_serve<I>(mut argv: I) -> Result<ServeArgs, CliError>
where
    I: Iterator<Item = String>,
{
    let mut stdio = false;
    let mut listen = None;
    let mut metrics_addr = None;
    let mut trace = None;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--listen" => {
                listen =
                    Some(argv.next().ok_or_else(|| {
                        CliError::new("--listen requires an address", SERVE_USAGE)
                    })?)
            }
            "--metrics-addr" => {
                metrics_addr = Some(argv.next().ok_or_else(|| {
                    CliError::new("--metrics-addr requires an address", SERVE_USAGE)
                })?)
            }
            "--trace" => {
                trace = Some(PathBuf::from(argv.next().ok_or_else(|| {
                    CliError::new("--trace requires a file argument", SERVE_USAGE)
                })?))
            }
            "-h" | "--help" => return Err(CliError::new("", SERVE_USAGE)),
            other => {
                return Err(CliError::new(
                    format!("unknown argument '{other}'"),
                    SERVE_USAGE,
                ))
            }
        }
    }
    if stdio && listen.is_some() {
        return Err(CliError::new(
            "--stdio and --listen are mutually exclusive",
            SERVE_USAGE,
        ));
    }
    Ok(ServeArgs {
        listen,
        metrics_addr,
        trace,
    })
}

/// Enforces that exactly one of `-t` and `-w` was given.
fn require_one_source(
    topology: Option<PathBuf>,
    workload: Option<String>,
    usage: &'static str,
) -> Result<(Option<PathBuf>, Option<String>), CliError> {
    match (&topology, &workload) {
        (None, None) => Err(CliError::new(
            "missing required -t <topology.csv> or -w <workload>",
            usage,
        )),
        (Some(_), Some(_)) => Err(CliError::new(
            "-t and -w are mutually exclusive (one workload per run)",
            usage,
        )),
        _ => Ok((topology, workload)),
    }
}

fn parse_llm<I>(mut argv: I) -> Result<LlmArgs, CliError>
where
    I: Iterator<Item = String>,
{
    let mut args = LlmArgs {
        out_dir: PathBuf::from("."),
        ..LlmArgs::default()
    };
    let positive = |flag: &str, v: Option<String>| -> Result<usize, CliError> {
        let v = v.ok_or_else(|| CliError::new(format!("{flag} requires a count"), LLM_USAGE))?;
        v.parse()
            .ok()
            .filter(|&n: &usize| n >= 1)
            .ok_or_else(|| CliError::new(format!("bad {flag} '{v}' (positive integer)"), LLM_USAGE))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "-c" | "--config" => {
                args.config =
                    Some(PathBuf::from(argv.next().ok_or_else(|| {
                        CliError::new("-c requires a file argument", LLM_USAGE)
                    })?))
            }
            "-w" | "--workload" => {
                args.workload = Some(
                    argv.next()
                        .ok_or_else(|| CliError::new("-w requires a preset name", LLM_USAGE))?,
                )
            }
            "--phase" => {
                args.phase = Some(
                    argv.next()
                        .ok_or_else(|| CliError::new("--phase requires a value", LLM_USAGE))?,
                )
            }
            "--seq" => args.seq = Some(positive("--seq", argv.next())?),
            "--batch" => args.batch = Some(positive("--batch", argv.next())?),
            "--context" => args.context = Some(positive("--context", argv.next())?),
            "-p" | "--path" => {
                args.out_dir = PathBuf::from(
                    argv.next()
                        .ok_or_else(|| CliError::new("-p requires a directory", LLM_USAGE))?,
                )
            }
            "--dram" => args.dram = true,
            "--energy" => args.energy = true,
            "--layout" => args.layout = true,
            "--trace" => {
                args.trace = Some(PathBuf::from(argv.next().ok_or_else(|| {
                    CliError::new("--trace requires a file argument", LLM_USAGE)
                })?))
            }
            "-v" | "--verbose" => args.verbose = true,
            "-h" | "--help" => return Err(CliError::new("", LLM_USAGE)),
            other => {
                return Err(CliError::new(
                    format!("unknown argument '{other}'"),
                    LLM_USAGE,
                ))
            }
        }
    }
    Ok(args)
}

fn parse_scaleout<I>(mut argv: I) -> Result<ScaleoutArgs, CliError>
where
    I: Iterator<Item = String>,
{
    let mut config = None;
    let mut topology = None;
    let mut workload = None;
    let mut out_dir = PathBuf::from(".");
    let mut gemm = false;
    let mut chips = None;
    let mut strategy = None;
    let mut fabric = None;
    let mut link_gbps = None;
    let mut trace = None;
    let mut verbose = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "-c" | "--config" => {
                config = Some(PathBuf::from(argv.next().ok_or_else(|| {
                    CliError::new("-c requires a file argument", SCALEOUT_USAGE)
                })?))
            }
            "-t" | "--topology" => {
                topology = Some(PathBuf::from(argv.next().ok_or_else(|| {
                    CliError::new("-t requires a file argument", SCALEOUT_USAGE)
                })?))
            }
            "-w" | "--workload" => {
                workload =
                    Some(argv.next().ok_or_else(|| {
                        CliError::new("-w requires a workload name", SCALEOUT_USAGE)
                    })?)
            }
            "-p" | "--path" => {
                out_dir = PathBuf::from(
                    argv.next()
                        .ok_or_else(|| CliError::new("-p requires a directory", SCALEOUT_USAGE))?,
                )
            }
            "--gemm" => gemm = true,
            "--chips" => {
                let v = argv
                    .next()
                    .ok_or_else(|| CliError::new("--chips requires a count", SCALEOUT_USAGE))?;
                chips = Some(v.parse().ok().filter(|&n: &usize| n >= 1).ok_or_else(|| {
                    CliError::new(
                        format!("bad --chips '{v}' (positive integer)"),
                        SCALEOUT_USAGE,
                    )
                })?);
            }
            "--strategy" => {
                strategy =
                    Some(argv.next().ok_or_else(|| {
                        CliError::new("--strategy requires a value", SCALEOUT_USAGE)
                    })?)
            }
            "--fabric" => {
                fabric =
                    Some(argv.next().ok_or_else(|| {
                        CliError::new("--fabric requires a value", SCALEOUT_USAGE)
                    })?)
            }
            "--link-gbps" => {
                let v = argv
                    .next()
                    .ok_or_else(|| CliError::new("--link-gbps requires a value", SCALEOUT_USAGE))?;
                link_gbps = Some(
                    v.parse::<f64>()
                        .ok()
                        .filter(|g| g.is_finite() && *g > 0.0)
                        .ok_or_else(|| {
                            CliError::new(
                                format!("bad --link-gbps '{v}' (positive GB/s)"),
                                SCALEOUT_USAGE,
                            )
                        })?,
                );
            }
            "--trace" => {
                trace = Some(PathBuf::from(argv.next().ok_or_else(|| {
                    CliError::new("--trace requires a file argument", SCALEOUT_USAGE)
                })?))
            }
            "-v" | "--verbose" => verbose = true,
            "-h" | "--help" => return Err(CliError::new("", SCALEOUT_USAGE)),
            other => {
                return Err(CliError::new(
                    format!("unknown argument '{other}'"),
                    SCALEOUT_USAGE,
                ))
            }
        }
    }
    let (topology, workload) = require_one_source(topology, workload, SCALEOUT_USAGE)?;
    Ok(ScaleoutArgs {
        config,
        topology,
        workload,
        out_dir,
        gemm,
        chips,
        strategy,
        fabric,
        link_gbps,
        trace,
        verbose,
    })
}

fn parse_run<I>(mut argv: I) -> Result<RunArgs, CliError>
where
    I: Iterator<Item = String>,
{
    let mut config = None;
    let mut topology = None;
    let mut workload = None;
    let mut out_dir = PathBuf::from(".");
    let (mut gemm, mut dram, mut energy, mut layout, mut area, mut verbose) =
        (false, false, false, false, false, false);
    let mut profile_stages = false;
    let mut trace = None;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "-c" | "--config" => {
                config =
                    Some(PathBuf::from(argv.next().ok_or_else(|| {
                        CliError::new("-c requires a file argument", USAGE)
                    })?))
            }
            "-t" | "--topology" => {
                topology =
                    Some(PathBuf::from(argv.next().ok_or_else(|| {
                        CliError::new("-t requires a file argument", USAGE)
                    })?))
            }
            "-w" | "--workload" => {
                workload = Some(
                    argv.next()
                        .ok_or_else(|| CliError::new("-w requires a workload name", USAGE))?,
                )
            }
            "-p" | "--path" => {
                out_dir = PathBuf::from(
                    argv.next()
                        .ok_or_else(|| CliError::new("-p requires a directory", USAGE))?,
                )
            }
            "--gemm" => gemm = true,
            "--dram" => dram = true,
            "--energy" => energy = true,
            "--layout" => layout = true,
            "--area" => area = true,
            "--profile-stages" => profile_stages = true,
            "--trace" => {
                trace = Some(PathBuf::from(argv.next().ok_or_else(|| {
                    CliError::new("--trace requires a file argument", USAGE)
                })?))
            }
            "-v" | "--verbose" => verbose = true,
            "-h" | "--help" => return Err(CliError::new("", USAGE)),
            other => return Err(CliError::new(format!("unknown argument '{other}'"), USAGE)),
        }
    }
    let (topology, workload) = require_one_source(topology, workload, USAGE)?;
    Ok(RunArgs {
        config,
        topology,
        workload,
        out_dir,
        gemm,
        dram,
        energy,
        layout,
        area,
        profile_stages,
        trace,
        verbose,
    })
}

fn parse_sweep<I>(mut argv: I) -> Result<SweepArgs, CliError>
where
    I: Iterator<Item = String>,
{
    let mut spec = None;
    let mut config = None;
    let mut topologies = Vec::new();
    let mut out_dir = PathBuf::from(".");
    let mut shards = 1usize;
    let mut trace = None;
    let mut verbose = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "-s" | "--spec" => {
                spec = Some(PathBuf::from(argv.next().ok_or_else(|| {
                    CliError::new("-s requires a file argument", SWEEP_USAGE)
                })?))
            }
            "-c" | "--config" => {
                config = Some(PathBuf::from(argv.next().ok_or_else(|| {
                    CliError::new("-c requires a file argument", SWEEP_USAGE)
                })?))
            }
            "-t" | "--topology" => topologies
                .push(PathBuf::from(argv.next().ok_or_else(|| {
                    CliError::new("-t requires a file argument", SWEEP_USAGE)
                })?)),
            "-p" | "--path" => {
                out_dir = PathBuf::from(
                    argv.next()
                        .ok_or_else(|| CliError::new("-p requires a directory", SWEEP_USAGE))?,
                )
            }
            "--shards" => {
                let v = argv
                    .next()
                    .ok_or_else(|| CliError::new("--shards requires a count", SWEEP_USAGE))?;
                shards = v.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    CliError::new(
                        format!("bad --shards '{v}' (positive integer)"),
                        SWEEP_USAGE,
                    )
                })?;
            }
            "--trace" => {
                trace = Some(PathBuf::from(argv.next().ok_or_else(|| {
                    CliError::new("--trace requires a file argument", SWEEP_USAGE)
                })?))
            }
            "-v" | "--verbose" => verbose = true,
            "-h" | "--help" => return Err(CliError::new("", SWEEP_USAGE)),
            other => {
                return Err(CliError::new(
                    format!("unknown argument '{other}'"),
                    SWEEP_USAGE,
                ))
            }
        }
    }
    Ok(SweepArgs {
        spec: spec.ok_or_else(|| CliError::new("missing required -s <spec>", SWEEP_USAGE))?,
        config,
        topologies,
        out_dir,
        shards,
        trace,
        verbose,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        std::iter::once("scalesim".to_string())
            .chain(args.iter().map(|s| s.to_string()))
            .collect()
    }

    #[test]
    fn run_command_round_trip() {
        let cmd = parse_cli(argv(&["-t", "net.csv", "--gemm", "--energy", "-p", "out"])).unwrap();
        let Command::Run(args) = cmd else {
            panic!("expected run command")
        };
        assert_eq!(args.topology, Some(PathBuf::from("net.csv")));
        assert_eq!(args.out_dir, PathBuf::from("out"));
        assert!(args.gemm && args.energy && !args.dram && !args.verbose);
    }

    #[test]
    fn workload_flag_round_trips_and_excludes_topology() {
        let cmd = parse_cli(argv(&["-w", "llama-7b:decode"])).unwrap();
        let Command::Run(args) = cmd else {
            panic!("expected run command")
        };
        assert_eq!(args.workload.as_deref(), Some("llama-7b:decode"));
        assert_eq!(args.topology, None);
        let err = parse_cli(argv(&["-t", "net.csv", "-w", "resnet18"])).unwrap_err();
        assert!(
            err.message.contains("mutually exclusive"),
            "{}",
            err.message
        );
        let cmd = parse_cli(argv(&["scaleout", "-w", "llama-7b:decode"])).unwrap();
        let Command::Scaleout(args) = cmd else {
            panic!("expected scaleout command")
        };
        assert_eq!(args.workload.as_deref(), Some("llama-7b:decode"));
    }

    #[test]
    fn llm_command_round_trips() {
        let cmd = parse_cli(argv(&[
            "llm",
            "-w",
            "llama-7b",
            "--phase",
            "decode",
            "--seq",
            "128",
            "--batch",
            "4",
            "--context",
            "2048",
            "-p",
            "out",
            "--energy",
            "-v",
        ]))
        .unwrap();
        let Command::Llm(args) = cmd else {
            panic!("expected llm command")
        };
        assert_eq!(args.workload.as_deref(), Some("llama-7b"));
        assert_eq!(args.phase.as_deref(), Some("decode"));
        assert_eq!(args.seq, Some(128));
        assert_eq!(args.batch, Some(4));
        assert_eq!(args.context, Some(2048));
        assert_eq!(args.out_dir, PathBuf::from("out"));
        assert!(args.energy && args.verbose && !args.dram);
        // Minimal form: model resolution is deferred to the service so a
        // cfg [llm] section alone also works.
        let cmd = parse_cli(argv(&["llm"])).unwrap();
        let Command::Llm(args) = cmd else {
            panic!("expected llm command")
        };
        assert!(args.workload.is_none() && args.phase.is_none());
    }

    #[test]
    fn llm_rejects_bad_flags_with_its_usage() {
        let err = parse_cli(argv(&["llm", "--wat"])).unwrap_err();
        assert!(err.message.contains("unknown argument '--wat'"));
        assert_eq!(err.usage, LLM_USAGE);
        for bad in [["--seq", "0"], ["--batch", "none"], ["--context", "-1"]] {
            let err = parse_cli(argv(&["llm", bad[0], bad[1]])).unwrap_err();
            assert!(err.message.contains(bad[0]), "{}", err.message);
        }
        let err = parse_cli(argv(&["llm", "-h"])).unwrap_err();
        assert!(err.message.is_empty());
        assert_eq!(err.usage, LLM_USAGE);
    }

    #[test]
    fn sweep_command_round_trip() {
        let cmd = parse_cli(argv(&[
            "sweep", "-s", "grid.cfg", "-t", "a.csv", "-t", "b.csv", "--shards", "4",
        ]))
        .unwrap();
        let Command::Sweep(args) = cmd else {
            panic!("expected sweep command")
        };
        assert_eq!(args.spec, PathBuf::from("grid.cfg"));
        assert_eq!(args.topologies.len(), 2);
        assert_eq!(args.shards, 4);
    }

    #[test]
    fn unknown_flag_is_an_error_with_usage() {
        let err = parse_cli(argv(&["-t", "net.csv", "--frobnicate"])).unwrap_err();
        assert!(err.message.contains("unknown argument '--frobnicate'"));
        assert_eq!(err.usage, USAGE);
    }

    #[test]
    fn unknown_positional_is_an_error() {
        // A mistyped subcommand must not fall through to the run parser
        // silently succeeding.
        let err = parse_cli(argv(&["swep", "-s", "grid.cfg"])).unwrap_err();
        assert!(err.message.contains("unknown argument 'swep'"));
    }

    #[test]
    fn unknown_sweep_flag_uses_sweep_usage() {
        let err = parse_cli(argv(&["sweep", "-s", "g.cfg", "--wat"])).unwrap_err();
        assert!(err.message.contains("unknown argument '--wat'"));
        assert_eq!(err.usage, SWEEP_USAGE);
    }

    #[test]
    fn missing_value_and_missing_required() {
        assert!(parse_cli(argv(&["-t"])).unwrap_err().message.contains("-t"));
        assert!(parse_cli(argv(&[]))
            .unwrap_err()
            .message
            .contains("missing required -t"));
        assert!(parse_cli(argv(&["sweep"]))
            .unwrap_err()
            .message
            .contains("missing required -s"));
    }

    #[test]
    fn bad_shards_is_an_error() {
        for bad in ["0", "-1", "many"] {
            let err = parse_cli(argv(&["sweep", "-s", "g", "--shards", bad])).unwrap_err();
            assert!(err.message.contains("--shards"), "{bad}: {}", err.message);
        }
    }

    #[test]
    fn version_flag_parses_anywhere() {
        assert_eq!(parse_cli(argv(&["--version"])).unwrap(), Command::Version);
        assert_eq!(parse_cli(argv(&["-V"])).unwrap(), Command::Version);
        // Like -h, it wins from any position in either command.
        assert_eq!(
            parse_cli(argv(&["-t", "net.csv", "--version"])).unwrap(),
            Command::Version
        );
        assert_eq!(
            parse_cli(argv(&["sweep", "-s", "g.toml", "-V"])).unwrap(),
            Command::Version
        );
    }

    #[test]
    fn version_string_names_tool_and_workspace_version() {
        let v = version_string();
        assert!(v.starts_with("scalesim "), "{v}");
        assert!(v.contains(env!("CARGO_PKG_VERSION")), "{v}");
        assert!(v.contains("git "), "{v}");
    }

    #[test]
    fn profile_stages_flag_round_trips() {
        let cmd = parse_cli(argv(&["-t", "net.csv", "--profile-stages"])).unwrap();
        let Command::Run(args) = cmd else {
            panic!("expected run command")
        };
        assert!(args.profile_stages);
        let cmd = parse_cli(argv(&["-t", "net.csv"])).unwrap();
        let Command::Run(args) = cmd else {
            panic!("expected run command")
        };
        assert!(!args.profile_stages);
    }

    #[test]
    fn help_has_empty_message() {
        let err = parse_cli(argv(&["-h"])).unwrap_err();
        assert!(err.message.is_empty());
        let err = parse_cli(argv(&["sweep", "-h"])).unwrap_err();
        assert!(err.message.is_empty());
        assert_eq!(err.usage, SWEEP_USAGE);
        let err = parse_cli(argv(&["serve", "-h"])).unwrap_err();
        assert!(err.message.is_empty());
        assert_eq!(err.usage, SERVE_USAGE);
    }

    #[test]
    fn scaleout_command_round_trips() {
        let cmd = parse_cli(argv(&[
            "scaleout",
            "-t",
            "net.csv",
            "--chips",
            "64",
            "--strategy",
            "tensor",
            "--fabric",
            "mesh",
            "--link-gbps",
            "37.5",
            "-p",
            "out",
        ]))
        .unwrap();
        let Command::Scaleout(args) = cmd else {
            panic!("expected scaleout command")
        };
        assert_eq!(args.topology, Some(PathBuf::from("net.csv")));
        assert_eq!(args.out_dir, PathBuf::from("out"));
        assert_eq!(args.chips, Some(64));
        assert_eq!(args.strategy.as_deref(), Some("tensor"));
        assert_eq!(args.fabric.as_deref(), Some("mesh"));
        assert_eq!(args.link_gbps, Some(37.5));
        // Minimal form: everything from the cfg.
        let cmd = parse_cli(argv(&["scaleout", "-t", "net.csv"])).unwrap();
        let Command::Scaleout(args) = cmd else {
            panic!("expected scaleout command")
        };
        assert_eq!(args.chips, None);
        assert!(args.strategy.is_none() && args.fabric.is_none());
    }

    #[test]
    fn scaleout_rejects_bad_flags_with_its_usage() {
        let err = parse_cli(argv(&["scaleout", "-t", "n.csv", "--wat"])).unwrap_err();
        assert!(err.message.contains("unknown argument '--wat'"));
        assert_eq!(err.usage, SCALEOUT_USAGE);
        let err = parse_cli(argv(&["scaleout", "-t", "n.csv", "--chips", "0"])).unwrap_err();
        assert!(err.message.contains("--chips"), "{}", err.message);
        let err = parse_cli(argv(&["scaleout", "-t", "n.csv", "--link-gbps", "-2"])).unwrap_err();
        assert!(err.message.contains("--link-gbps"), "{}", err.message);
        let err = parse_cli(argv(&["scaleout"])).unwrap_err();
        assert!(
            err.message.contains("missing required -t"),
            "{}",
            err.message
        );
        let err = parse_cli(argv(&["scaleout", "-h"])).unwrap_err();
        assert!(err.message.is_empty());
        assert_eq!(err.usage, SCALEOUT_USAGE);
    }

    #[test]
    fn serve_command_parses_modes() {
        assert_eq!(
            parse_cli(argv(&["serve"])).unwrap(),
            Command::Serve(ServeArgs::default())
        );
        assert_eq!(
            parse_cli(argv(&["serve", "--stdio"])).unwrap(),
            Command::Serve(ServeArgs::default())
        );
        assert_eq!(
            parse_cli(argv(&["serve", "--listen", "127.0.0.1:7878"])).unwrap(),
            Command::Serve(ServeArgs {
                listen: Some("127.0.0.1:7878".into()),
                ..ServeArgs::default()
            })
        );
        assert_eq!(
            parse_cli(argv(&[
                "serve",
                "--metrics-addr",
                "127.0.0.1:9090",
                "--trace",
                "t.json"
            ]))
            .unwrap(),
            Command::Serve(ServeArgs {
                listen: None,
                metrics_addr: Some("127.0.0.1:9090".into()),
                trace: Some(PathBuf::from("t.json")),
            })
        );
    }

    #[test]
    fn trace_flag_round_trips_on_every_subcommand() {
        let cmd = parse_cli(argv(&["-t", "net.csv", "--trace", "run.json"])).unwrap();
        let Command::Run(args) = cmd else {
            panic!("expected run command")
        };
        assert_eq!(args.trace, Some(PathBuf::from("run.json")));
        let cmd = parse_cli(argv(&["llm", "-w", "llama-7b", "--trace", "l.json"])).unwrap();
        let Command::Llm(args) = cmd else {
            panic!("expected llm command")
        };
        assert_eq!(args.trace, Some(PathBuf::from("l.json")));
        let cmd = parse_cli(argv(&["sweep", "-s", "g.cfg", "--trace", "s.json"])).unwrap();
        let Command::Sweep(args) = cmd else {
            panic!("expected sweep command")
        };
        assert_eq!(args.trace, Some(PathBuf::from("s.json")));
        let cmd = parse_cli(argv(&["scaleout", "-t", "n.csv", "--trace", "o.json"])).unwrap();
        let Command::Scaleout(args) = cmd else {
            panic!("expected scaleout command")
        };
        assert_eq!(args.trace, Some(PathBuf::from("o.json")));
        // A dangling --trace is an error on every parser.
        for cmdline in [
            vec!["-t", "n.csv", "--trace"],
            vec!["llm", "--trace"],
            vec!["sweep", "-s", "g", "--trace"],
            vec!["scaleout", "-t", "n.csv", "--trace"],
            vec!["serve", "--trace"],
        ] {
            let err = parse_cli(argv(&cmdline)).unwrap_err();
            assert!(err.message.contains("--trace requires"), "{}", err.message);
        }
    }

    #[test]
    fn serve_rejects_conflicting_and_unknown_flags() {
        let err = parse_cli(argv(&["serve", "--stdio", "--listen", "x"])).unwrap_err();
        assert!(
            err.message.contains("mutually exclusive"),
            "{}",
            err.message
        );
        let err = parse_cli(argv(&["serve", "--wat"])).unwrap_err();
        assert!(err.message.contains("unknown argument '--wat'"));
        assert_eq!(err.usage, SERVE_USAGE);
        let err = parse_cli(argv(&["serve", "--listen"])).unwrap_err();
        assert!(err.message.contains("--listen requires"), "{}", err.message);
    }
}
