//! End-to-end tests of the `scalesim` binary: argument rejection and
//! sweep-report determinism across thread counts and shard counts.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scalesim"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scalesim-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn unknown_flag_prints_usage_and_exits_nonzero() {
    let out = bin()
        .args(["--frobnicate"])
        .output()
        .expect("spawn scalesim");
    assert!(!out.status.success(), "unknown flag must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown argument '--frobnicate'"),
        "stderr was: {stderr}"
    );
    assert!(stderr.contains("usage: scalesim"), "stderr was: {stderr}");
}

#[test]
fn unknown_subcommand_prints_usage_and_exits_nonzero() {
    let out = bin().args(["swoop"]).output().expect("spawn scalesim");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument 'swoop'"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn unknown_sweep_flag_prints_sweep_usage() {
    let out = bin()
        .args(["sweep", "-s", "nope.toml", "--wat"])
        .output()
        .expect("spawn scalesim");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument '--wat'"), "{stderr}");
    assert!(stderr.contains("usage: scalesim sweep"), "{stderr}");
}

fn write_sweep_inputs(dir: &Path) -> (PathBuf, PathBuf) {
    let topo_a = dir.join("a_gemm.csv");
    std::fs::write(
        &topo_a,
        "Layer, M, K, N,\nl0, 16, 16, 16,\nl1, 24, 24, 24,\n",
    )
    .unwrap();
    let topo_b = dir.join("b_gemm.csv");
    std::fs::write(&topo_b, "Layer, M, K, N,\nl0, 32, 16, 8,\n").unwrap();
    let spec = dir.join("grid.toml");
    std::fs::write(
        &spec,
        format!(
            "[sweep]\nname = cli-test\n[grid]\narray = 8x8, 16x16\nbandwidth = 4, 10\n\
             energy = true\n[workloads]\ntopology = {}, {}\n",
            topo_a.display(),
            topo_b.display()
        ),
    )
    .unwrap();
    (spec, dir.to_path_buf())
}

/// The acceptance property: SWEEP_REPORT bytes must not depend on
/// `SCALESIM_THREADS` or `--shards`.
#[test]
fn sweep_reports_are_byte_identical_across_threads_and_shards() {
    let dir = tmp_dir("det");
    let (spec, _) = write_sweep_inputs(&dir);
    let mut outputs = Vec::new();
    for (tag, threads, shards) in [("t1s1", "1", "1"), ("t8s1", "8", "1"), ("t8s3", "8", "3")] {
        let out_dir = dir.join(tag);
        let out = bin()
            .args(["sweep", "-s"])
            .arg(&spec)
            .args(["--shards", shards, "-p"])
            .arg(&out_dir)
            .env("SCALESIM_THREADS", threads)
            .output()
            .expect("spawn scalesim sweep");
        assert!(
            out.status.success(),
            "sweep failed ({tag}): {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let csv = std::fs::read(out_dir.join("SWEEP_REPORT.csv")).unwrap();
        let json = std::fs::read(out_dir.join("SWEEP_REPORT.json")).unwrap();
        outputs.push((tag, csv, json));
    }
    let (_, csv0, json0) = &outputs[0];
    for (tag, csv, json) in &outputs[1..] {
        assert_eq!(csv, csv0, "CSV differs for {tag}");
        assert_eq!(json, json0, "JSON differs for {tag}");
    }
    // Sanity: 4 grid points x 2 topologies = 8 runs + header.
    let text = String::from_utf8(csv0.clone()).unwrap();
    assert_eq!(text.lines().count(), 9, "expected 8 runs:\n{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_flag_prints_the_version_and_exits_zero() {
    for flag in ["--version", "-V"] {
        let out = bin().args([flag]).output().expect("spawn scalesim");
        assert!(out.status.success(), "{flag}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.starts_with("scalesim "), "{flag}: {stdout}");
        assert!(stdout.contains("git "), "{flag}: {stdout}");
    }
}

#[test]
fn unknown_cfg_key_fails_with_named_error_and_config_exit_code() {
    let dir = tmp_dir("badcfg");
    let cfg = dir.join("bad.cfg");
    std::fs::write(&cfg, "[architecture_presets]\nArrayHieght : 32\n").unwrap();
    let topo = dir.join("t_gemm.csv");
    std::fs::write(&topo, "Layer, M, K, N,\nl0, 16, 16, 16,\n").unwrap();
    let out = bin()
        .args(["-c"])
        .arg(&cfg)
        .args(["-t"])
        .arg(&topo)
        .args(["--gemm"])
        .output()
        .expect("spawn scalesim");
    assert_eq!(
        out.status.code(),
        Some(2),
        "configuration errors exit with code 2"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown key 'arrayhieght'"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `SimError` taxonomy pins process exit codes: config=2,
/// topology=3, io=4 (internal=70 is unit-tested in `scalesim-api` —
/// it only fires on caught panics). CLI usage errors stay 1.
#[test]
fn error_categories_map_to_distinct_exit_codes() {
    let dir = tmp_dir("exitcodes");

    // Duplicate layer name -> topology error -> exit 3, naming the
    // duplicate and its line numbers.
    let dup = dir.join("dup_gemm.csv");
    std::fs::write(&dup, "Layer, M, K, N,\nqkv, 16, 16, 16,\nqkv, 8, 8, 8,\n").unwrap();
    let out = bin()
        .args(["-t"])
        .arg(&dup)
        .args(["--gemm"])
        .output()
        .expect("spawn scalesim");
    assert_eq!(out.status.code(), Some(3), "topology errors exit with 3");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("duplicate layer name 'qkv'"),
        "must name the duplicate: {stderr}"
    );
    assert!(
        stderr.contains("line 3") && stderr.contains("first defined at line 2"),
        "must name both lines: {stderr}"
    );

    // Missing input file -> io error -> exit 4.
    let out = bin()
        .args(["-t", "/nonexistent/topo.csv"])
        .output()
        .expect("spawn scalesim");
    assert_eq!(out.status.code(), Some(4), "io errors exit with 4");

    // Usage errors keep the generic failure code 1.
    let out = bin().args(["--frobnicate"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1), "usage errors exit with 1");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_without_topologies_fails_with_message() {
    let dir = tmp_dir("notopo");
    let spec = dir.join("grid.toml");
    std::fs::write(&spec, "[grid]\narray = 8x8\n").unwrap();
    let out = bin()
        .args(["sweep", "-s"])
        .arg(&spec)
        .output()
        .expect("spawn scalesim sweep");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no topologies"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
