//! LLM workload subsystem determinism and golden suite.
//!
//! Pins the acceptance properties of `scalesim llm`:
//!
//! * **Thread determinism** — report bytes are identical for any
//!   `SCALESIM_THREADS` (checked through the real binary).
//! * **Serve/CLI equivalence** — the reports an `llm` request over the
//!   JSON-lines protocol returns are byte-identical to the files the
//!   one-shot CLI writes, and a scale-out run over a registry workload
//!   (`-w`) matches its serve-mode twin the same way.
//! * **Golden stability** — one prefill and one decode report of a
//!   fixed tiny transformer match checked-in goldens under
//!   `tests/golden/` (regenerate intentional changes with
//!   `SCALESIM_BLESS=1`).
//!
//! Everything here runs a deliberately tiny model so the suite stays
//! fast in debug builds; the full llama-7b preset is exercised by the
//! CI smoke job against the release binary.

use scalesim::api::{ConfigSource, LlmRequest, ScaleoutRequest, SimRequest, SimResponse};
use scalesim::serve::handle_line;
use scalesim::service::SimService;
use scalesim_api::{wire, TopologySource};
use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `content` against the golden file `name`, or rewrites the
/// golden when `SCALESIM_BLESS` is set.
fn check(name: &str, content: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("SCALESIM_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, content).unwrap_or_else(|e| panic!("bless {name}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); regenerate with SCALESIM_BLESS=1")
    });
    assert!(
        content == want,
        "{name} drifted from the golden copy.\n\
         If the change is intentional, regenerate with SCALESIM_BLESS=1.\n\
         --- golden ---\n{want}\n--- got ---\n{content}"
    );
}

/// The fixed tiny transformer of the golden scenarios: GQA (4 heads
/// over 2 KV heads) and a gated FFN on a 16x16 WS core, so every GEMM
/// kind the generator emits is represented while debug-build runs stay
/// in milliseconds.
const GOLDEN_CFG: &str = "[architecture_presets]\n\
     ArrayHeight : 16\nArrayWidth : 16\n\
     IfmapSramSzkB : 64\nFilterSramSzkB : 64\nOfmapSramSzkB : 32\n\
     Dataflow : ws\n\
     [llm]\nPreset : llama-7b\nLayers : 2\nDModel : 128\nHeads : 4\n\
     KvHeads : 2\nDFf : 344\nVocab : 512\nSeq : 32\nBatch : 1\n";

fn golden_request(phase: &str) -> LlmRequest {
    LlmRequest {
        config: ConfigSource::Inline(GOLDEN_CFG.into()),
        phase: Some(phase.into()),
        ..Default::default()
    }
}

fn reports_of(req: LlmRequest) -> Vec<(String, String)> {
    let service = SimService::new();
    let SimResponse::Llm(body) = service
        .handle(&SimRequest::Llm(req))
        .expect("valid request")
    else {
        panic!("expected llm body")
    };
    body.reports
        .into_iter()
        .map(|r| (r.name, r.content))
        .collect()
}

#[test]
fn tiny_prefill_matches_golden() {
    let reports = reports_of(golden_request("prefill"));
    let (name, content) = &reports[0];
    assert_eq!(name, "COMPUTE_REPORT.csv");
    check("llm_tiny_prefill.COMPUTE_REPORT.csv", content);
}

#[test]
fn tiny_decode_matches_golden() {
    let reports = reports_of(golden_request("decode"));
    let (name, content) = &reports[0];
    assert_eq!(name, "COMPUTE_REPORT.csv");
    check("llm_tiny_decode.COMPUTE_REPORT.csv", content);
}

#[test]
fn decode_utilization_sits_below_prefill() {
    let service = SimService::new();
    let mut utils = Vec::new();
    for phase in ["prefill", "decode"] {
        let SimResponse::Llm(body) = service
            .handle(&SimRequest::Llm(golden_request(phase)))
            .expect("valid request")
        else {
            panic!("expected llm body")
        };
        utils.push(body.summary.utilization);
    }
    assert!(
        utils[1] < utils[0],
        "decode ({:.4}) must run below prefill ({:.4}) on the same core",
        utils[1],
        utils[0],
    );
}

#[test]
fn report_bytes_are_identical_across_thread_counts_via_the_binary() {
    let dir = std::env::temp_dir().join(format!("scalesim-llm-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let cfg = dir.join("llm.cfg");
    std::fs::write(&cfg, GOLDEN_CFG).unwrap();
    let mut reports = Vec::new();
    for threads in ["1", "8"] {
        let out = dir.join(format!("t{threads}"));
        std::fs::create_dir_all(&out).unwrap();
        let status = Command::new(env!("CARGO_BIN_EXE_scalesim"))
            .args(["llm", "--phase", "decode", "-c"])
            .arg(&cfg)
            .arg("-p")
            .arg(&out)
            .env("SCALESIM_THREADS", threads)
            .status()
            .expect("spawn scalesim");
        assert!(status.success(), "llm run failed ({threads} threads)");
        reports.push((
            std::fs::read_to_string(out.join("COMPUTE_REPORT.csv")).unwrap(),
            std::fs::read_to_string(out.join("BANDWIDTH_REPORT.csv")).unwrap(),
        ));
    }
    assert_eq!(
        reports[0], reports[1],
        "llm report bytes must not depend on SCALESIM_THREADS"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_mode_reports_match_the_one_shot_cli_files() {
    let dir = std::env::temp_dir().join(format!("scalesim-llm-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let cfg = dir.join("llm.cfg");
    std::fs::write(&cfg, GOLDEN_CFG).unwrap();

    // One-shot CLI, through the real binary.
    let status = Command::new(env!("CARGO_BIN_EXE_scalesim"))
        .args(["llm", "--phase", "decode", "--context", "64", "-c"])
        .arg(&cfg)
        .arg("-p")
        .arg(&dir)
        .status()
        .expect("spawn scalesim");
    assert!(status.success());

    // Serve mode, through the wire protocol.
    let req = LlmRequest {
        config: ConfigSource::Path(cfg.display().to_string()),
        phase: Some("decode".into()),
        context: Some(64),
        ..Default::default()
    };
    let line = wire::encode_request(Some("llm-1"), &SimRequest::Llm(req));
    let service = SimService::new();
    let response = handle_line(&service, &line);
    let (id, decoded) = wire::decode_response(&response);
    assert_eq!(id.as_deref(), Some("llm-1"));
    let SimResponse::Llm(body) = decoded.expect("serve answers ok") else {
        panic!("expected llm body")
    };
    assert_eq!(body.phase, "decode");
    assert_eq!(body.context, 64);
    for report in &body.reports {
        let cli_bytes = std::fs::read_to_string(dir.join(&report.name)).unwrap();
        assert_eq!(
            report.content, cli_bytes,
            "{}: serve-mode bytes must match the CLI file",
            report.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A registry workload (`-w gpt2-xl:decode` here, any llm preset works
/// the same way) runs through `scalesim scaleout` under tensor
/// parallelism, and the serve-mode report is byte-identical to the CLI
/// file. Uses the smallest preset so the debug binary stays fast.
#[test]
fn llm_workload_scales_out_with_matching_cli_and_serve_bytes() {
    let dir = std::env::temp_dir().join(format!("scalesim-llm-so-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let cfg = dir.join("so.cfg");
    std::fs::write(
        &cfg,
        "[scaleout]\nChips : 8\nStrategy : tensor\nLinkGbps : 100\n",
    )
    .unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_scalesim"))
        .args(["scaleout", "-w", "gpt2-xl:decode", "-c"])
        .arg(&cfg)
        .arg("-p")
        .arg(&dir)
        .status()
        .expect("spawn scalesim");
    assert!(status.success(), "scaleout over an llm workload failed");
    let cli_bytes = std::fs::read_to_string(dir.join("SCALEOUT_REPORT.csv")).unwrap();
    assert!(
        cli_bytes.lines().any(|l| l.starts_with("blk0_score")),
        "attention GEMMs must appear in the scale-out report"
    );

    let mut req = ScaleoutRequest::for_topology(TopologySource::from_workload("gpt2-xl:decode"));
    req.config = ConfigSource::Path(cfg.display().to_string());
    let line = wire::encode_request(Some("so-llm-1"), &SimRequest::Scaleout(req));
    let service = SimService::new();
    let response = handle_line(&service, &line);
    let (id, decoded) = wire::decode_response(&response);
    assert_eq!(id.as_deref(), Some("so-llm-1"));
    let SimResponse::Scaleout(body) = decoded.expect("serve answers ok") else {
        panic!("expected scaleout body")
    };
    assert_eq!(body.chips, 8);
    assert_eq!(body.strategy, "tp");
    assert_eq!(
        body.reports[0].content, cli_bytes,
        "serve-mode scale-out bytes must match the CLI file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
