//! Acceptance suite for the typed API: report strings returned through
//! [`SimService`] must be **byte-identical** to the one-shot CLI path,
//! pinned against the same golden files as `golden_reports.rs`.
//!
//! Every scenario here reconstructs a golden configuration *through the
//! request surface* (inline `.cfg` text + inline topology CSV + feature
//! flags) and compares the response's embedded reports against the
//! checked-in golden bytes. A drift in either the engine or the facade
//! fails here.

use scalesim::api::{
    ConfigSource, Features, Report, RunSpec, SimRequest, SimResponse, SweepRequest, TopologySource,
};
use scalesim::SimService;
use std::path::PathBuf;

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); see golden_reports.rs"))
}

/// The golden suite's fixed core (16x16 WS, 64/64/32 kB) expressed as
/// the `.cfg` text a request would carry.
fn base_cfg(extra: &str) -> ConfigSource {
    ConfigSource::Inline(format!(
        "[architecture_presets]\nArrayHeight : 16\nArrayWidth : 16\n\
         IfmapSramSzkB : 64\nFilterSramSzkB : 64\nOfmapSramSzkB : 32\n\
         Dataflow : ws\n{extra}"
    ))
}

/// The golden suite's fixed workload in `name, M, K, N` rows.
fn golden_topology() -> TopologySource {
    TopologySource::inline(
        "golden",
        "square, 32, 32, 32,\nwide, 48, 32, 64,\ndeep, 40, 96, 24,\n",
    )
}

fn run_reports(config: ConfigSource, features: Features) -> Vec<Report> {
    let service = SimService::new();
    let request = SimRequest::Run(RunSpec {
        config,
        topology: golden_topology(),
        features,
    });
    let SimResponse::Run(body) = service.handle(&request).unwrap() else {
        panic!("run request answers with a run body")
    };
    body.reports
}

fn assert_report(reports: &[Report], name: &str, golden_file: &str) {
    let report = reports
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("response lacks {name}"));
    assert!(
        report.content == golden(golden_file),
        "{name} drifted from golden {golden_file}"
    );
}

#[test]
fn dense_run_matches_golden_bytes() {
    let reports = run_reports(base_cfg(""), Features::default());
    assert_report(&reports, "COMPUTE_REPORT.csv", "dense.COMPUTE_REPORT.csv");
    assert_report(
        &reports,
        "BANDWIDTH_REPORT.csv",
        "dense.BANDWIDTH_REPORT.csv",
    );
}

#[test]
fn sparse_run_matches_golden_bytes() {
    let cfg = base_cfg("[sparsity]\nSparsitySupport : true\nSparseRatio : 1:4\n");
    let reports = run_reports(cfg, Features::default());
    assert_report(&reports, "COMPUTE_REPORT.csv", "sparse.COMPUTE_REPORT.csv");
    assert_report(&reports, "SPARSE_REPORT.csv", "sparse.SPARSE_REPORT.csv");
}

#[test]
fn dram_run_matches_golden_bytes() {
    let reports = run_reports(
        base_cfg(""),
        Features {
            dram: true,
            ..Default::default()
        },
    );
    assert_report(&reports, "COMPUTE_REPORT.csv", "dram.COMPUTE_REPORT.csv");
    assert_report(
        &reports,
        "BANDWIDTH_REPORT.csv",
        "dram.BANDWIDTH_REPORT.csv",
    );
    assert_report(&reports, "DRAM_REPORT.csv", "dram.DRAM_REPORT.csv");
}

#[test]
fn energy_run_matches_golden_bytes() {
    let reports = run_reports(
        base_cfg(""),
        Features {
            energy: true,
            ..Default::default()
        },
    );
    assert_report(&reports, "ENERGY_REPORT.csv", "energy.ENERGY_REPORT.csv");
}

#[test]
fn multicore_run_matches_golden_bytes() {
    let reports = run_reports(
        base_cfg(""),
        Features {
            energy: true,
            cores: Some("2x2".into()),
            ..Default::default()
        },
    );
    assert_report(
        &reports,
        "COMPUTE_REPORT.csv",
        "multicore.COMPUTE_REPORT.csv",
    );
    assert_report(&reports, "ENERGY_REPORT.csv", "multicore.ENERGY_REPORT.csv");
}

#[test]
fn full_pipeline_run_matches_golden_bytes() {
    let cfg = base_cfg("[sparsity]\nSparsitySupport : true\nSparseRatio : 2:4\n");
    let reports = run_reports(
        cfg,
        Features {
            dram: true,
            energy: true,
            layout: true,
            cores: None,
        },
    );
    for (name, file) in [
        ("COMPUTE_REPORT.csv", "full.COMPUTE_REPORT.csv"),
        ("BANDWIDTH_REPORT.csv", "full.BANDWIDTH_REPORT.csv"),
        ("SPARSE_REPORT.csv", "full.SPARSE_REPORT.csv"),
        ("DRAM_REPORT.csv", "full.DRAM_REPORT.csv"),
        ("ENERGY_REPORT.csv", "full.ENERGY_REPORT.csv"),
    ] {
        assert_report(&reports, name, file);
    }
}

#[test]
fn sweep_request_matches_golden_bytes() {
    let service = SimService::new();
    let request = SimRequest::Sweep(SweepRequest {
        spec: ConfigSource::Inline(
            "[sweep]\nname = golden\n[grid]\n\
             array = 8x8, 16x16\nbandwidth = 4, 10\nenergy = true\n"
                .into(),
        ),
        base_config: base_cfg(""),
        topologies: vec![
            golden_topology(),
            TopologySource::inline("tiny", "only, 16, 16, 16,\n"),
        ],
        shards: 1,
    });
    let SimResponse::Sweep(body) = service.handle(&request).unwrap() else {
        panic!("sweep request answers with a sweep body")
    };
    assert_eq!(body.grid_points, 4);
    assert_eq!(body.runs, 8);
    assert_report(&body.reports, "SWEEP_REPORT.csv", "sweep.SWEEP_REPORT.csv");
    assert_report(
        &body.reports,
        "SWEEP_REPORT.json",
        "sweep.SWEEP_REPORT.json",
    );
}

/// The same request handled twice by one service — exercising the
/// shared plan cache — must return identical bytes: caching can never
/// leak into results.
#[test]
fn warm_cache_responses_are_byte_identical() {
    let service = SimService::new();
    let request = SimRequest::Run(RunSpec {
        config: base_cfg(""),
        topology: golden_topology(),
        features: Features {
            energy: true,
            ..Default::default()
        },
    });
    let cold = service.handle(&request).unwrap();
    let misses = service.plan_cache().stats().misses;
    let warm = service.handle(&request).unwrap();
    assert_eq!(
        service.plan_cache().stats().misses,
        misses,
        "second request must hit the warm cache"
    );
    let (SimResponse::Run(cold), SimResponse::Run(warm)) = (cold, warm) else {
        panic!("run bodies")
    };
    assert_eq!(cold, warm);
}
