//! Scale-out determinism and golden suite.
//!
//! Pins the three acceptance properties of `scalesim scaleout`:
//!
//! * **Thread determinism** — `SCALEOUT_REPORT.csv` is byte-identical
//!   for any `SCALESIM_THREADS` (checked through the real binary).
//! * **Serve/CLI equivalence** — the report a `scaleout` request over
//!   the JSON-lines protocol returns is byte-identical to the file the
//!   one-shot CLI writes for the same inputs.
//! * **Golden stability** — ring data-parallel and mesh tensor-parallel
//!   reports match checked-in golden copies under `tests/golden/`
//!   (regenerate intentional changes with `SCALESIM_BLESS=1`).

use scalesim::api::{ScaleoutRequest, SimRequest, SimResponse, TopologySource};
use scalesim::serve::handle_line;
use scalesim::service::SimService;
use scalesim::MemoryScaleoutSink;
use scalesim_api::wire;
use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `content` against the golden file `name`, or rewrites the
/// golden when `SCALESIM_BLESS` is set.
fn check(name: &str, content: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("SCALESIM_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, content).unwrap_or_else(|e| panic!("bless {name}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); regenerate with SCALESIM_BLESS=1")
    });
    assert!(
        content == want,
        "{name} drifted from the golden copy.\n\
         If the change is intentional, regenerate with SCALESIM_BLESS=1.\n\
         --- golden ---\n{want}\n--- got ---\n{content}"
    );
}

/// The fixed per-chip architecture of the golden scenarios.
const GOLDEN_CFG: &str = "[architecture_presets]\n\
     ArrayHeight : 16\nArrayWidth : 16\n\
     IfmapSramSzkB : 64\nFilterSramSzkB : 64\nOfmapSramSzkB : 32\n\
     Dataflow : ws\n";

/// The fixed workload: four GEMM layers with enough M/N/K variety to
/// exercise sharding in every dimension.
const GOLDEN_TOPOLOGY: &str = "Layer, M, K, N,\n\
     embed, 256, 64, 96,\n\
     attn, 256, 96, 96,\n\
     mlp_up, 256, 96, 192,\n\
     mlp_down, 256, 192, 96,\n";

fn golden_request(scaleout_section: &str) -> ScaleoutRequest {
    let mut req = ScaleoutRequest::for_topology(TopologySource::inline("golden", GOLDEN_TOPOLOGY));
    req.config = scalesim::api::ConfigSource::Inline(format!("{GOLDEN_CFG}{scaleout_section}"));
    req
}

fn report_of(req: ScaleoutRequest) -> String {
    let service = SimService::new();
    let prepared = service.prepare_scaleout(&req).expect("valid request");
    let mut sink = MemoryScaleoutSink::new();
    prepared.run_into(&mut sink).expect("run succeeds");
    sink.finish()
}

#[test]
fn ring_data_parallel_matches_golden() {
    let report = report_of(golden_request(
        "[scaleout]\nChips : 8\nFabric : ring\nLinkGbps : 100\nLinkLatency : 500\nStrategy : data\n",
    ));
    check("scaleout_ring_dp.SCALEOUT_REPORT.csv", &report);
}

#[test]
fn mesh_tensor_parallel_matches_golden() {
    let report = report_of(golden_request(
        "[scaleout]\nChips : 8\nFabric : mesh\nMesh : 2x4\nLinkGbps : 25\nLinkLatency : 250\nStrategy : tensor\n",
    ));
    check("scaleout_mesh_tp.SCALEOUT_REPORT.csv", &report);
}

#[test]
fn pipeline_parallel_schedules_stages() {
    let service = SimService::new();
    let mut req = golden_request("[scaleout]\nChips : 4\nStrategy : pipeline\nMicrobatches : 4\n");
    req.chips = None;
    let SimResponse::Scaleout(body) = service.handle(&SimRequest::Scaleout(req)).unwrap() else {
        panic!("expected scaleout body")
    };
    assert_eq!(body.strategy, "pp");
    assert!(body.bubble_cycles > 0, "a pipeline has a fill/drain bubble");
    // The pipeline wall clock beats running all stages serially.
    assert!(body.total_cycles < body.compute_cycles + body.exposed_cycles);
}

/// The report schema is part of the public interface: pin the column
/// set and that every golden row is well-formed CSV.
#[test]
fn scaleout_report_schema_is_stable() {
    let expected = "LayerName|Stage|ShardM|ShardN|ShardK|ComputeCycles|CommKind|CommCycles|\
         OverlappedCycles|ExposedCycles|TotalCycles|Utilization";
    for file in [
        "scaleout_ring_dp.SCALEOUT_REPORT.csv",
        "scaleout_mesh_tp.SCALEOUT_REPORT.csv",
        "example_scaleout.SCALEOUT_REPORT.csv",
    ] {
        let text = std::fs::read_to_string(golden_dir().join(file))
            .unwrap_or_else(|e| panic!("missing golden {file} ({e}); bless with SCALESIM_BLESS=1"));
        let mut lines = text.lines();
        let header: Vec<&str> = lines
            .next()
            .unwrap_or_else(|| panic!("{file} is empty"))
            .split(',')
            .map(str::trim)
            .collect();
        assert_eq!(
            header,
            expected.split('|').collect::<Vec<_>>(),
            "{file}: column schema drifted"
        );
        for (i, row) in lines.enumerate() {
            assert_eq!(
                row.split(',').count(),
                header.len(),
                "{file} row {i} column count"
            );
        }
        assert!(text.lines().count() > 1, "{file} has no data rows");
    }
}

/// Blesses/refreshes the shipped example golden the CI scaleout-smoke
/// job diffs against (the example cfg + the shipped ResNet-18 CSV, run
/// in-process through the same facade the binary uses).
#[test]
fn example_scaleout_matches_golden() {
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut req = ScaleoutRequest::for_topology(TopologySource::from_path(
        repo_root
            .join("topologies/resnet18.csv")
            .display()
            .to_string(),
    ));
    req.config = scalesim::api::ConfigSource::Path(
        repo_root
            .join("configs/example_scaleout.cfg")
            .display()
            .to_string(),
    );
    let report = report_of(req);
    check("example_scaleout.SCALEOUT_REPORT.csv", &report);
    // The repo-root copy the CI job diffs against is the same bytes.
    let ci_golden = repo_root.join("tests/golden/example_scaleout.SCALEOUT_REPORT.csv");
    if std::env::var_os("SCALESIM_BLESS").is_some() {
        std::fs::write(&ci_golden, &report).expect("bless repo-root golden");
    } else {
        assert_eq!(
            std::fs::read_to_string(&ci_golden).expect("repo-root golden exists"),
            report,
            "tests/golden/example_scaleout.SCALEOUT_REPORT.csv (repo root) drifted; \
             bless with SCALESIM_BLESS=1"
        );
    }
}

#[test]
fn report_bytes_are_identical_across_thread_counts_via_the_binary() {
    let dir = std::env::temp_dir().join(format!("scalesim-so-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let topo = dir.join("golden.csv");
    std::fs::write(&topo, GOLDEN_TOPOLOGY).unwrap();
    let cfg = dir.join("so.cfg");
    std::fs::write(
        &cfg,
        format!("{GOLDEN_CFG}[scaleout]\nChips : 8\nStrategy : data\n"),
    )
    .unwrap();
    let mut reports = Vec::new();
    for threads in ["1", "4", "16"] {
        let out = dir.join(format!("t{threads}"));
        std::fs::create_dir_all(&out).unwrap();
        let status = Command::new(env!("CARGO_BIN_EXE_scalesim"))
            .args(["scaleout", "-c"])
            .arg(&cfg)
            .arg("-t")
            .arg(&topo)
            .arg("-p")
            .arg(&out)
            .env("SCALESIM_THREADS", threads)
            .status()
            .expect("spawn scalesim");
        assert!(status.success(), "scaleout run failed ({threads} threads)");
        reports.push(std::fs::read_to_string(out.join("SCALEOUT_REPORT.csv")).unwrap());
    }
    for other in &reports[1..] {
        assert_eq!(
            &reports[0], other,
            "SCALEOUT_REPORT.csv must not depend on SCALESIM_THREADS"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_mode_report_matches_the_one_shot_cli_file() {
    let dir = std::env::temp_dir().join(format!("scalesim-so-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let topo = dir.join("golden.csv");
    std::fs::write(&topo, GOLDEN_TOPOLOGY).unwrap();
    let cfg = dir.join("so.cfg");
    std::fs::write(
        &cfg,
        format!("{GOLDEN_CFG}[scaleout]\nChips : 8\nStrategy : tensor\n"),
    )
    .unwrap();

    // One-shot CLI, through the real binary.
    let status = Command::new(env!("CARGO_BIN_EXE_scalesim"))
        .args(["scaleout", "-c"])
        .arg(&cfg)
        .arg("-t")
        .arg(&topo)
        .arg("-p")
        .arg(&dir)
        .status()
        .expect("spawn scalesim");
    assert!(status.success());
    let cli_bytes = std::fs::read_to_string(dir.join("SCALEOUT_REPORT.csv")).unwrap();

    // Serve mode, through the wire protocol.
    let mut req =
        ScaleoutRequest::for_topology(TopologySource::from_path(topo.display().to_string()));
    req.config = scalesim::api::ConfigSource::Path(cfg.display().to_string());
    let line = wire::encode_request(Some("so-1"), &SimRequest::Scaleout(req));
    let service = SimService::new();
    let response = handle_line(&service, &line);
    let (id, decoded) = wire::decode_response(&response);
    assert_eq!(id.as_deref(), Some("so-1"));
    let SimResponse::Scaleout(body) = decoded.expect("serve answers ok") else {
        panic!("expected scaleout body")
    };
    assert_eq!(body.reports[0].name, "SCALEOUT_REPORT.csv");
    assert_eq!(
        body.reports[0].content, cli_bytes,
        "serve-mode report bytes must match the CLI file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
