//! Observability guarantees through the real binary.
//!
//! Two hard invariants of `crates/obs` (see `docs/OBSERVABILITY.md`):
//!
//! * **Determinism**: tracing observes the simulation but never feeds
//!   back into it. Enabling `--trace` must not change a single report
//!   byte, at any worker count.
//! * **Validity**: the emitted file is well-formed Chrome trace-event
//!   JSON (the object form Perfetto loads), with one named track per
//!   recording thread and category/name strings from the documented
//!   vocabulary. The file is parsed with the workspace's own strict
//!   JSON parser (`scalesim_api::json::Json`), not eyeballed.

use scalesim_api::json::Json;
use scalesim_api::SPAN_CATEGORIES;
use std::path::{Path, PathBuf};
use std::process::Command;

const CFG: &str = "[architecture_presets]\nArrayHeight : 16\nArrayWidth : 16\n\
     IfmapSramSzkB : 64\nFilterSramSzkB : 64\nOfmapSramSzkB : 32\nDataflow : ws\n";

const TOPOLOGY: &str = "Layer, M, K, N,\n\
     qkv, 64, 64, 192,\nff1, 64, 64, 256,\nff2, 64, 256, 64,\nhead, 64, 64, 32,\n";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scalesim"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scalesim-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Reads every regular file in `dir` as `(name, bytes)`, sorted by name.
fn report_files(dir: &Path) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("read output dir")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read_to_string(e.path()).expect("read report"),
            )
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "{}: no reports written", dir.display());
    files
}

/// `--trace` must not change any report byte: span recording happens on
/// the side of the simulation, never in it. Crossed with worker counts
/// 1/8 so the guard also covers the per-worker ring buffers.
#[test]
fn trace_flag_does_not_change_report_bytes_across_thread_counts() {
    let dir = tmp_dir("det");
    let cfg = dir.join("core.cfg");
    std::fs::write(&cfg, CFG).unwrap();
    let topo = dir.join("net_gemm.csv");
    std::fs::write(&topo, TOPOLOGY).unwrap();

    let mut variants = Vec::new();
    for threads in ["1", "8"] {
        for traced in [false, true] {
            let tag = format!("t{threads}-{}", if traced { "trace" } else { "plain" });
            let out = dir.join(&tag);
            std::fs::create_dir_all(&out).unwrap();
            let mut cmd = bin();
            cmd.args(["-c"])
                .arg(&cfg)
                .args(["-t"])
                .arg(&topo)
                .args(["--gemm", "--energy", "-p"])
                .arg(&out)
                .env("SCALESIM_THREADS", threads);
            if traced {
                // The trace lands *outside* the report dir so the
                // byte-for-byte comparison below only sees reports.
                cmd.args(["--trace"]).arg(dir.join(format!("{tag}.json")));
            }
            let status = cmd.status().expect("spawn scalesim");
            assert!(status.success(), "run failed ({tag})");
            variants.push((tag, report_files(&out)));
        }
    }
    let (base_tag, base) = &variants[0];
    for (tag, files) in &variants[1..] {
        assert_eq!(
            base, files,
            "reports differ between {base_tag} and {tag}: tracing fed back into the simulation"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The emitted trace parses with the workspace's strict JSON parser and
/// carries the documented Chrome trace-event schema: object form with
/// `displayTimeUnit`, complete ("X") events with pid/tid/ts/dur, thread
/// name metadata ("M") tracks, and categories from the closed set.
#[test]
fn emitted_trace_is_valid_chrome_json_with_named_tracks() {
    let dir = tmp_dir("schema");
    let cfg = dir.join("core.cfg");
    std::fs::write(&cfg, CFG).unwrap();
    let topo = dir.join("net_gemm.csv");
    std::fs::write(&topo, TOPOLOGY).unwrap();
    let trace = dir.join("trace.json");

    let status = bin()
        .args(["-c"])
        .arg(&cfg)
        .args(["-t"])
        .arg(&topo)
        .args(["--gemm", "-p"])
        .arg(&dir)
        .args(["--trace"])
        .arg(&trace)
        .env("SCALESIM_THREADS", "4")
        .status()
        .expect("spawn scalesim");
    assert!(status.success(), "traced run failed");

    let text = std::fs::read_to_string(&trace).expect("read trace file");
    let json = Json::parse(&text).expect("trace must parse with the strict workspace parser");

    assert_eq!(
        json.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms"),
        "object-form header"
    );
    let events = json
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace recorded no events");

    let mut complete = 0usize;
    let mut tracks = Vec::new();
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("ph");
        event.get("pid").and_then(Json::as_u64).expect("pid");
        event.get("tid").and_then(Json::as_u64).expect("tid");
        match ph {
            "X" => {
                complete += 1;
                event.get("ts").and_then(Json::as_f64).expect("ts");
                event.get("dur").and_then(Json::as_f64).expect("dur");
                let cat = event.get("cat").and_then(Json::as_str).expect("cat");
                assert!(
                    SPAN_CATEGORIES.contains(&cat),
                    "unknown span category {cat:?}"
                );
                assert!(
                    !event
                        .get("name")
                        .and_then(Json::as_str)
                        .expect("name")
                        .is_empty(),
                    "span with empty name"
                );
            }
            "i" => {
                let cat = event.get("cat").and_then(Json::as_str).expect("cat");
                assert!(
                    SPAN_CATEGORIES.contains(&cat),
                    "unknown instant category {cat:?}"
                );
            }
            "M" => {
                assert_eq!(
                    event.get("name").and_then(Json::as_str),
                    Some("thread_name"),
                    "only thread_name metadata is emitted"
                );
                let label = event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("thread_name label");
                tracks.push(label.to_string());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(complete > 0, "no complete (X) spans in the trace");
    assert!(
        tracks.iter().any(|t| t == "main"),
        "main thread track missing (tracks: {tracks:?})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--profile-stages` is a view over the same span data; its
/// machine-readable `STAGE_PROFILE.json` must parse and cover the
/// pipeline stages with non-zero call counts.
#[test]
fn stage_profile_json_is_a_valid_span_view() {
    let dir = tmp_dir("stages");
    let cfg = dir.join("core.cfg");
    std::fs::write(&cfg, CFG).unwrap();
    let topo = dir.join("net_gemm.csv");
    std::fs::write(&topo, TOPOLOGY).unwrap();

    let status = bin()
        .args(["-c"])
        .arg(&cfg)
        .args(["-t"])
        .arg(&topo)
        .args(["--gemm", "--profile-stages", "-p"])
        .arg(&dir)
        .status()
        .expect("spawn scalesim");
    assert!(status.success(), "profiled run failed");

    let text = std::fs::read_to_string(dir.join("STAGE_PROFILE.json")).expect("STAGE_PROFILE.json");
    let json = Json::parse(&text).expect("stage profile must be valid JSON");
    let stages = json
        .get("stages")
        .and_then(Json::as_array)
        .expect("stages array");
    assert!(!stages.is_empty(), "no stages profiled");
    for stage in stages {
        let name = stage.get("stage").and_then(Json::as_str).expect("stage");
        let calls = stage.get("calls").and_then(Json::as_u64).expect("calls");
        stage.get("nanos").and_then(Json::as_u64).expect("nanos");
        assert!(calls > 0, "stage {name:?} recorded zero calls");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
