//! End-to-end tests of `scalesim serve`: the stdio and TCP transports,
//! per-request isolation (malformed input never kills the process), and
//! the acceptance property — serve-mode reports byte-identical to the
//! one-shot CLI's files.

use scalesim::api::{wire, Features, RunSpec, SimRequest, SimResponse, TopologySource};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scalesim"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scalesim-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_inputs(dir: &Path) -> (PathBuf, PathBuf) {
    let cfg = dir.join("core.cfg");
    std::fs::write(
        &cfg,
        "[architecture_presets]\nArrayHeight : 16\nArrayWidth : 16\n\
         IfmapSramSzkB : 64\nFilterSramSzkB : 64\nOfmapSramSzkB : 32\nDataflow : ws\n",
    )
    .unwrap();
    let topo = dir.join("net_gemm.csv");
    std::fs::write(
        &topo,
        "Layer, M, K, N,\nqkv, 64, 64, 192,\nff1, 64, 64, 256,\n",
    )
    .unwrap();
    (cfg, topo)
}

fn run_request(cfg: &Path, topo: &Path) -> SimRequest {
    SimRequest::Run(RunSpec {
        config: scalesim::api::ConfigSource::Path(cfg.display().to_string()),
        topology: TopologySource::from_path(topo.display().to_string()),
        features: Features {
            energy: true,
            ..Default::default()
        },
    })
}

/// Pipes `lines` through `scalesim serve --stdio`, returning one
/// response line per request.
fn stdio_round_trip(lines: &[String]) -> Vec<String> {
    let mut child = bin()
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn scalesim serve");
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        for line in lines {
            stdin.write_all(line.as_bytes()).unwrap();
            stdin.write_all(b"\n").unwrap();
        }
    }
    drop(child.stdin.take()); // EOF ends the session.
    let mut stdout = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut stdout)
        .unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "serve must exit 0 on EOF");
    stdout.lines().map(str::to_string).collect()
}

/// The acceptance property: a serve-mode response carries the exact
/// bytes the one-shot CLI writes to its report files.
#[test]
fn serve_reports_are_byte_identical_to_the_oneshot_cli() {
    let dir = tmp_dir("parity");
    let (cfg, topo) = write_inputs(&dir);

    // One-shot CLI run.
    let out_dir = dir.join("cli-out");
    let out = bin()
        .args(["-c"])
        .arg(&cfg)
        .args(["-t"])
        .arg(&topo)
        .args(["--gemm", "--energy", "-p"])
        .arg(&out_dir)
        .output()
        .expect("spawn scalesim");
    assert!(
        out.status.success(),
        "cli run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The same scenario through serve --stdio. The CLI's --gemm flag
    // corresponds to format "gemm"; auto-detection picks the same
    // parser for this file, so use the explicit format to mirror the
    // flag exactly.
    let request = match run_request(&cfg, &topo) {
        SimRequest::Run(mut spec) => {
            spec.topology = spec
                .topology
                .with_format(scalesim::api::TopologyFormat::Gemm);
            SimRequest::Run(spec)
        }
        _ => unreachable!(),
    };
    let responses = stdio_round_trip(&[wire::encode_request(Some("parity"), &request)]);
    assert_eq!(responses.len(), 1);
    let (id, result) = wire::decode_response(&responses[0]);
    assert_eq!(id.as_deref(), Some("parity"));
    let SimResponse::Run(body) = result.unwrap() else {
        panic!("expected run body")
    };

    let expected = [
        "COMPUTE_REPORT.csv",
        "BANDWIDTH_REPORT.csv",
        "ENERGY_REPORT.csv",
    ];
    assert_eq!(
        body.reports
            .iter()
            .map(|r| r.name.as_str())
            .collect::<Vec<_>>(),
        expected,
        "serve emits exactly the files the CLI wrote"
    );
    for report in &body.reports {
        let file = std::fs::read_to_string(out_dir.join(&report.name)).unwrap();
        assert!(
            report.content == file,
            "{} differs between serve and the one-shot CLI",
            report.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_stdio_isolates_bad_requests_and_keeps_answering() {
    let dir = tmp_dir("isolation");
    let (cfg, topo) = write_inputs(&dir);
    let good = wire::encode_request(Some("ok-1"), &run_request(&cfg, &topo));
    let lines = vec![
        "this is not json".to_string(),
        r#"{"api": 1, "id": "bad-cfg", "run": {"config": {"inline": "ArrayHieght : 2\n"}, "topology": {"inline": "a, 8, 8, 8,\n"}}}"#.to_string(),
        r#"{"api": 1, "id": "dup", "run": {"topology": {"inline": "a, 8, 8, 8,\na, 8, 8, 8,\n"}}}"#.to_string(),
        good,
        r#"{"api": 1, "version": {}}"#.to_string(),
    ];
    let responses = stdio_round_trip(&lines);
    assert_eq!(responses.len(), 5, "one response per request, in order");

    let (_, r0) = wire::decode_response(&responses[0]);
    assert_eq!(r0.unwrap_err().kind(), "config", "malformed JSON");

    let (id, r1) = wire::decode_response(&responses[1]);
    assert_eq!(id.as_deref(), Some("bad-cfg"));
    let e = r1.unwrap_err();
    assert_eq!((e.kind(), e.exit_code()), ("config", 2));

    let (id, r2) = wire::decode_response(&responses[2]);
    assert_eq!(id.as_deref(), Some("dup"));
    let e = r2.unwrap_err();
    assert_eq!(e.kind(), "topology");
    assert!(e.message().contains("duplicate layer name 'a'"), "{e}");

    let (id, r3) = wire::decode_response(&responses[3]);
    assert_eq!(id.as_deref(), Some("ok-1"));
    assert!(matches!(r3.unwrap(), SimResponse::Run(_)));

    let (_, r4) = wire::decode_response(&responses[4]);
    let SimResponse::Version(v) = r4.unwrap() else {
        panic!("expected version")
    };
    assert_eq!(v.api, scalesim::api::API_VERSION);
    let _ = std::fs::remove_dir_all(&dir);
}

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Answers concurrent connections over TCP with responses identical to
/// each other (and, transitively via the parity test above, to the
/// one-shot CLI).
#[test]
fn serve_listen_answers_concurrent_connections() {
    let dir = tmp_dir("tcp");
    let (cfg, topo) = write_inputs(&dir);

    // The session cap defaults to machine parallelism, which can be 1
    // on a small runner; this test needs two concurrent sessions.
    let mut child = bin()
        .args(["serve", "--listen", "127.0.0.1:0"])
        .env("SCALESIM_SERVE_SESSIONS", "4")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn scalesim serve --listen");
    // The binary prints the bound address (ephemeral port) on stderr.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).unwrap();
    let _child = KillOnDrop(child);
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_string();

    let sweep_line = r#"{"api": 1, "id": "sw", "sweep": {"spec": {"inline": "array = 8x8, 16x16\nenergy = true\n"}, "topologies": [{"name": "t", "inline": "a, 16, 16, 16,\n"}]}}"#;
    let run_line = wire::encode_request(Some("r"), &run_request(&cfg, &topo));

    let exchange = |line: String| {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        BufReader::new(&stream).read_line(&mut response).unwrap();
        response.trim_end().to_string()
    };

    // Two concurrent clients: a run and a sweep, plus a second run to
    // prove the warm-cache path returns the same bytes.
    let (first_run, sweep_resp) = std::thread::scope(|scope| {
        let a = scope.spawn(|| exchange(run_line.clone()));
        let b = scope.spawn(|| exchange(sweep_line.to_string()));
        (a.join().unwrap(), b.join().unwrap())
    });
    let second_run = exchange(run_line.clone());
    assert_eq!(first_run, second_run, "warm cache must not change bytes");

    let (_, run_result) = wire::decode_response(&first_run);
    assert!(matches!(run_result.unwrap(), SimResponse::Run(_)));
    let (id, sweep_result) = wire::decode_response(&sweep_resp);
    assert_eq!(id.as_deref(), Some("sw"));
    let SimResponse::Sweep(sweep_body) = sweep_result.unwrap() else {
        panic!("expected sweep body")
    };
    assert_eq!(sweep_body.grid_points, 2);
    assert_eq!(sweep_body.runs, 2);
    let _ = std::fs::remove_dir_all(&dir);
}
