//! Scheduler determinism through the real binary.
//!
//! The work-stealing scheduler (`scalesim-sched`) executes layer tasks,
//! sweep shards, scale-out shard compute and serve requests; its one
//! hard invariant is that **no report byte may depend on the worker
//! count**. This suite pins that end to end for every subcommand,
//! crossing `SCALESIM_THREADS` over 1 / 4 / 16:
//!
//! * `run` — every report file in the output directory;
//! * `sweep` — `SWEEP_REPORT.{csv,json}`, which also exercises *nested*
//!   parallelism (batch-class sweep shards spawning layer scopes), so a
//!   pass at `SCALESIM_THREADS=1` doubles as the no-deadlock check for
//!   nesting on a single worker;
//! * `serve --stdio` — a mixed JSON-lines tape, byte for byte.
//!
//! (Scale-out byte-identity across the same matrix lives in
//! `tests/scaleout.rs`.)
//!
//! A Linux-only check also pins **no oversubscription**: a process run
//! with `SCALESIM_THREADS=8` may never hold more threads than the
//! workers it was asked for plus a small constant — the scheduler keeps
//! one persistent pool instead of spawning per call.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const THREAD_COUNTS: [&str; 3] = ["1", "4", "16"];

const CFG: &str = "[architecture_presets]\nArrayHeight : 16\nArrayWidth : 16\n\
     IfmapSramSzkB : 64\nFilterSramSzkB : 64\nOfmapSramSzkB : 32\nDataflow : ws\n";

/// Enough same-shaped and distinct layers to keep several workers busy
/// and hit the plan cache.
const TOPOLOGY: &str = "Layer, M, K, N,\n\
     qkv, 64, 64, 192,\nff1, 64, 64, 256,\nff2, 64, 256, 64,\n\
     qkv2, 64, 64, 192,\nhead, 64, 64, 32,\n";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scalesim"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scalesim-sched-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Reads every regular file in `dir` as `(name, bytes)`, sorted by name.
fn report_files(dir: &Path) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("read output dir")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read_to_string(e.path()).expect("read report"),
            )
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "{}: no reports written", dir.display());
    files
}

#[test]
fn run_reports_are_byte_identical_across_thread_counts() {
    let dir = tmp_dir("run");
    let cfg = dir.join("core.cfg");
    std::fs::write(&cfg, CFG).unwrap();
    let topo = dir.join("net_gemm.csv");
    std::fs::write(&topo, TOPOLOGY).unwrap();

    let mut per_threads = Vec::new();
    for threads in THREAD_COUNTS {
        let out = dir.join(format!("t{threads}"));
        std::fs::create_dir_all(&out).unwrap();
        let status = bin()
            .args(["-c"])
            .arg(&cfg)
            .args(["-t"])
            .arg(&topo)
            .args(["--gemm", "--energy", "-p"])
            .arg(&out)
            .env("SCALESIM_THREADS", threads)
            .status()
            .expect("spawn scalesim");
        assert!(status.success(), "run failed at {threads} threads");
        per_threads.push(report_files(&out));
    }
    for (threads, files) in THREAD_COUNTS.iter().zip(&per_threads).skip(1) {
        assert_eq!(
            &per_threads[0], files,
            "run reports differ between SCALESIM_THREADS=1 and {threads}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_reports_are_byte_identical_across_thread_counts_and_nesting_cannot_deadlock() {
    let dir = tmp_dir("sweep");
    let topo = dir.join("net_gemm.csv");
    std::fs::write(&topo, TOPOLOGY).unwrap();
    let spec = dir.join("grid.toml");
    // 8 grid points x multi-layer topology: every sweep point is a
    // batch-class shard whose run spawns nested layer scopes.
    std::fs::write(
        &spec,
        format!(
            "[sweep]\nname = det\n[grid]\narray = 8x8, 16x16\ndataflow = os, ws\n\
             bandwidth = 10, 20\n[workloads]\ntopology = {}\n",
            topo.display()
        ),
    )
    .unwrap();

    let mut per_threads = Vec::new();
    for threads in THREAD_COUNTS {
        let out = dir.join(format!("t{threads}"));
        std::fs::create_dir_all(&out).unwrap();
        let status = bin()
            .args(["sweep", "-s"])
            .arg(&spec)
            .args(["-p"])
            .arg(&out)
            .env("SCALESIM_THREADS", threads)
            .status()
            .expect("spawn scalesim sweep");
        // Completion at SCALESIM_THREADS=1 is the nested-parallelism
        // no-deadlock check: shard scopes and their layer scopes share
        // one worker plus the submitting thread.
        assert!(status.success(), "sweep failed at {threads} threads");
        per_threads.push(report_files(&out));
    }
    for (threads, files) in THREAD_COUNTS.iter().zip(&per_threads).skip(1) {
        assert_eq!(
            &per_threads[0], files,
            "sweep reports differ between SCALESIM_THREADS=1 and {threads}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_stdio_responses_are_byte_identical_across_thread_counts() {
    let tape: String = [
        r#"{"api": 1, "id": "r1", "run": {"topology": {"name": "t", "inline": "a, 16, 16, 16,\nb, 24, 24, 24,\n"}}}"#,
        r#"{"api": 1, "id": "sw", "sweep": {"spec": {"inline": "[grid]\narray = 8x8, 16x16\n"}, "topologies": [{"name": "t", "inline": "a, 16, 16, 16,\n"}]}}"#,
        r#"{"api": 1, "id": "sc", "scaleout": {"topology": {"name": "t", "inline": "a, 32, 32, 32,\n"}, "chips": 4, "strategy": "data"}}"#,
        r#"{"api": 1, "id": "r2", "run": {"topology": {"name": "t", "inline": "a, 16, 16, 16,\nb, 24, 24, 24,\n"}}}"#,
    ]
    .join("\n");

    let mut per_threads = Vec::new();
    for threads in THREAD_COUNTS {
        let mut child = bin()
            .args(["serve", "--stdio"])
            .env("SCALESIM_THREADS", threads)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn scalesim serve --stdio");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(format!("{tape}\n").as_bytes())
            .unwrap();
        let out = child.wait_with_output().expect("serve session");
        assert!(out.status.success(), "serve failed at {threads} threads");
        let stdout = String::from_utf8(out.stdout).expect("utf-8 responses");
        assert_eq!(stdout.lines().count(), 4, "one response per request");
        per_threads.push(stdout);
    }
    for (threads, responses) in THREAD_COUNTS.iter().zip(&per_threads).skip(1) {
        assert_eq!(
            &per_threads[0], responses,
            "serve responses differ between SCALESIM_THREADS=1 and {threads}"
        );
    }
}

/// The scheduler must not oversubscribe: one persistent pool of
/// `SCALESIM_THREADS` workers, not a fresh pool per parallel_map call.
/// Peak thread count of a whole sweep run stays within the asked-for
/// workers plus a small constant (main thread + runtime helpers).
#[cfg(target_os = "linux")]
#[test]
fn a_sweep_process_never_holds_more_threads_than_asked_for() {
    const WORKERS: usize = 8;
    let dir = tmp_dir("threads");
    let topo = dir.join("net_gemm.csv");
    std::fs::write(&topo, TOPOLOGY).unwrap();
    let spec = dir.join("grid.toml");
    // A grid big enough that the process lives long enough to sample.
    std::fs::write(
        &spec,
        format!(
            "[sweep]\nname = threads\n[grid]\narray = 8x8, 16x16, 32x32\n\
             dataflow = os, ws\nbandwidth = 4, 10, 20\n[workloads]\ntopology = {}\n",
            topo.display()
        ),
    )
    .unwrap();

    let mut child = bin()
        .args(["sweep", "-s"])
        .arg(&spec)
        .args(["-p"])
        .arg(&dir)
        .env("SCALESIM_THREADS", WORKERS.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn scalesim sweep");

    let status_path = format!("/proc/{}/status", child.id());
    let mut peak = 0usize;
    let mut samples = 0usize;
    loop {
        if let Some(code) = child.try_wait().expect("poll child") {
            assert!(code.success(), "sweep failed");
            break;
        }
        if let Ok(status) = std::fs::read_to_string(&status_path) {
            if let Some(threads) = status
                .lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse::<usize>().ok())
            {
                peak = peak.max(threads);
                samples += 1;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(samples > 0, "never sampled the running process");
    // main thread + 8 workers = 9; leave headroom for runtime helpers,
    // but a spawn-per-call scheme (which peaked at workers * live calls)
    // must trip this.
    assert!(
        peak <= WORKERS + 4,
        "peak thread count {peak} oversubscribes {WORKERS} workers"
    );
    assert!(
        peak > 1,
        "expected to observe the worker pool (peak {peak})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
