//! Wire-framing fuzz harness for `scalesim serve --stdio`.
//!
//! Streams thousands of seeded hostile lines — byte soup, truncated
//! and corrupted requests, wrong-shape JSON, bracket bombs, CRLF
//! endings, an oversized line, concatenated frames, bad deadlines —
//! into one serve process, interleaved with valid requests, and holds
//! the protocol contract: **exactly one response line per non-blank
//! request line, then a clean EOF exit**. No panic, no hang (a
//! watchdog kills the process if it wedges), no short output.
//!
//! The generator is deterministic (vendored SplitMix64), so a failure
//! reproduces from the seed in the panic message.

use std::io::{Read, Write};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const SEED: u64 = 0xF422_FA11;

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One fuzz line (no terminator) plus whether the server owes a
/// response for it (blank lines are skipped by the protocol).
struct FuzzLine {
    bytes: Vec<u8>,
    expects_response: bool,
    crlf: bool,
}

fn line(bytes: impl Into<Vec<u8>>, expects_response: bool) -> FuzzLine {
    FuzzLine {
        bytes: bytes.into(),
        expects_response,
        crlf: false,
    }
}

fn valid_run_line(id: u64) -> String {
    format!(
        "{{\"api\": 1, \"id\": \"run-{id}\", \"run\": {{\"topology\": \
         {{\"name\": \"t\", \"inline\": \"a, 8, 8, 8,\\n\"}}}}}}"
    )
}

fn gen_line(rng: &mut SplitMix64, i: usize) -> FuzzLine {
    match rng.below(12) {
        // Raw byte soup (newline-free so framing stays per-line; \r is
        // excluded too to keep response accounting exact).
        0 => {
            let len = 1 + rng.below(120) as usize;
            let bytes: Vec<u8> = (0..len)
                .map(|_| loop {
                    let b = rng.next() as u8;
                    if b != b'\n' && b != b'\r' {
                        break b;
                    }
                })
                .collect();
            // Whitespace-only soup would be skipped as a blank line.
            let blank = std::str::from_utf8(&bytes)
                .map(|s| s.trim().is_empty())
                .unwrap_or(false);
            line(bytes, !blank)
        }
        // Truncated valid request.
        1 => {
            let full = valid_run_line(i as u64);
            let cut = 1 + rng.below(full.len() as u64 - 1) as usize;
            line(full.as_bytes()[..cut].to_vec(), true)
        }
        // Single/multi-byte corruption of a valid request.
        2 => {
            let mut bytes = valid_run_line(i as u64).into_bytes();
            for _ in 0..=rng.below(3) {
                let at = rng.below(bytes.len() as u64) as usize;
                let b = loop {
                    let b = rng.next() as u8;
                    if b != b'\n' && b != b'\r' {
                        break b;
                    }
                };
                bytes[at] = b;
            }
            line(bytes, true)
        }
        // Wrong-shape but valid JSON.
        3 => {
            let shapes: [&[u8]; 6] = [
                b"[1, 2, 3]",
                b"42",
                b"\"just a string\"",
                b"{\"api\": 99, \"version\": {}}",
                b"{\"run\": \"not an object\"}",
                b"{\"api\": 1, \"frobnicate\": {}}",
            ];
            line(shapes[rng.below(6) as usize].to_vec(), true)
        }
        // Bracket bombs (deep nesting must be a typed error).
        4 => {
            let depth = 130 + rng.below(2000) as usize;
            let open = if rng.below(2) == 0 { "[" } else { "{\"k\":" };
            line(open.repeat(depth).into_bytes(), true)
        }
        // Bad deadline field values.
        5 => {
            let bads = ["-5", "1.5", "\"soon\"", "null", "true", "1e300"];
            line(
                format!(
                    "{{\"api\": 1, \"id\": \"d{i}\", \"deadline_ms\": {}, \"version\": {{}}}}",
                    bads[rng.below(6) as usize]
                )
                .into_bytes(),
                true,
            )
        }
        // Expired deadline on a real request: typed deadline error.
        6 => line(
            format!(
                "{{\"api\": 1, \"id\": \"late{i}\", \"deadline_ms\": 0, \"run\": \
                 {{\"topology\": {{\"inline\": \"a, 8, 8, 8,\\n\"}}}}}}"
            )
            .into_bytes(),
            true,
        ),
        // Two frames concatenated on one line: trailing-characters
        // parse error, exactly one response.
        7 => line(
            format!(
                "{} {}",
                valid_run_line(i as u64),
                "{\"api\": 1, \"version\": {}}"
            )
            .into_bytes(),
            true,
        ),
        // Blank-ish lines: skipped, no response owed.
        8 => {
            let blanks: [&[u8]; 4] = [b"", b"   ", b"\t\t", b" \t "];
            line(blanks[rng.below(4) as usize].to_vec(), false)
        }
        // CRLF termination on a valid request.
        9 => {
            let mut l = line(
                format!("{{\"api\": 1, \"id\": \"crlf{i}\", \"stats\": {{}}}}").into_bytes(),
                true,
            );
            l.crlf = true;
            l
        }
        // Valid cheap requests keep the session demonstrably healthy.
        10 => line(b"{\"api\": 1, \"version\": {}}".to_vec(), true),
        _ => {
            if rng.below(50) == 0 {
                // Occasionally a real simulation request.
                line(valid_run_line(i as u64).into_bytes(), true)
            } else {
                line(
                    format!("{{\"api\": 1, \"id\": \"s{i}\", \"stats\": {{}}}}").into_bytes(),
                    true,
                )
            }
        }
    }
}

#[test]
fn ten_thousand_hostile_lines_one_response_each_then_clean_exit() {
    const LINES: usize = 10_000;
    let mut rng = SplitMix64(SEED);
    let mut lines: Vec<FuzzLine> = (0..LINES).map(|i| gen_line(&mut rng, i)).collect();
    // One oversized line (> MAX_REQUEST_BYTES) somewhere in the middle:
    // drained in O(1) memory, answered with a typed config error.
    let oversized = vec![b'{'; scalesim::MAX_REQUEST_BYTES + 1];
    lines.insert(LINES / 2, line(oversized, true));
    let expected: usize = lines.iter().filter(|l| l.expects_response).count();

    let mut child = Command::new(env!("CARGO_BIN_EXE_scalesim"))
        .args(["serve", "--stdio"])
        .env("SCALESIM_SERVE_WORKERS", "2")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn scalesim serve");

    // Watchdog: a wedged server fails the test instead of hanging CI.
    let done = Arc::new(AtomicBool::new(false));
    let pid = child.id();
    let watchdog = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for _ in 0..240 {
                std::thread::sleep(std::time::Duration::from_secs(1));
                if done.load(Ordering::Relaxed) {
                    return;
                }
            }
            // Timed out: kill the serve process so the reader unblocks.
            let _ = Command::new("kill").arg(pid.to_string()).status();
        })
    };

    // Feed stdin from its own thread while the main thread drains
    // stdout — without concurrent reads a full pipe would deadlock.
    let mut stdin = child.stdin.take().expect("stdin piped");
    let writer = std::thread::spawn(move || {
        for l in &lines {
            stdin.write_all(&l.bytes).unwrap();
            stdin
                .write_all(if l.crlf { b"\r\n" } else { b"\n" })
                .unwrap();
        }
        drop(stdin); // EOF ends the session.
    });

    let mut stdout = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut stdout)
        .unwrap();
    writer.join().unwrap();
    let status = child.wait().unwrap();
    done.store(true, Ordering::Relaxed);
    watchdog.join().unwrap();

    assert!(
        status.success(),
        "serve must survive the fuzz tape and exit 0 on EOF (seed {SEED:#x}), got {status:?}"
    );
    let responses: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        responses.len(),
        expected,
        "exactly one response per non-blank line (seed {SEED:#x})"
    );
    // Every response is a decodable frame: either a body or a typed
    // error with a known kind.
    for (n, response) in responses.iter().enumerate() {
        let (_, result) = scalesim::api::wire::decode_response(response);
        if let Err(e) = result {
            assert!(
                ["config", "topology", "io", "internal", "busy", "deadline"].contains(&e.kind()),
                "response {n} has unknown kind {:?} (seed {SEED:#x})",
                e.kind()
            );
            assert_ne!(
                e.kind(),
                "internal",
                "response {n}: an internal error means a caught panic — \
                 a bug even when survived (seed {SEED:#x}): {e}"
            );
        }
    }
}
