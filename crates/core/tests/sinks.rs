//! Behavioral coverage for the [`ResultSink`] implementations beyond
//! the byte-equivalence tests in `src/sink.rs`:
//!
//! * `CsvReportSink` writes each section header exactly once, flushes
//!   on drop (via its buffered writers) even without `finish`, and
//!   latches the first I/O error without corrupting co-sinks.
//! * `CollectSink` and `RunSummary` keep their O(1)/ordering invariants
//!   when a teed CSV sink errors mid-stream.

use scalesim::{
    CollectSink, CsvReportSink, LayerResult, MemoryReportSink, ReportSections, ResultSink,
    RunSummary, ScaleSim, ScaleSimConfig,
};
use scalesim_systolic::{ArrayShape, Layer, MemoryConfig, Topology};
use std::path::PathBuf;

fn config() -> ScaleSimConfig {
    let mut config = ScaleSimConfig::default();
    config.core.array = ArrayShape::new(8, 8);
    config.core.memory = MemoryConfig::from_kilobytes(16, 16, 8, 2);
    config.enable_energy = true;
    config
}

fn layers(n: usize) -> Vec<LayerResult> {
    let sim = ScaleSim::new(config());
    let topo = Topology::from_layers(
        "t",
        (0..n)
            .map(|i| Layer::gemm_layer(format!("l{i}"), 16 + 8 * (i % 3), 16, 24))
            .collect(),
    );
    sim.run_topology(&topo).layers
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scalesim-sinks-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn csv_sink_writes_each_header_exactly_once() {
    let dir = tmp_dir("header");
    let mut sink = CsvReportSink::new(&dir, ReportSections::for_config(&config()));
    for l in layers(7) {
        sink.layer(l);
    }
    sink.finish().unwrap();
    for file in [
        "COMPUTE_REPORT.csv",
        "BANDWIDTH_REPORT.csv",
        "ENERGY_REPORT.csv",
    ] {
        let text = std::fs::read_to_string(dir.join(file)).unwrap();
        let header = text.lines().next().unwrap().to_string();
        assert_eq!(
            text.lines().filter(|l| **l == header).count(),
            1,
            "{file}: header must appear exactly once"
        );
        assert_eq!(text.lines().count(), 8, "{file}: 1 header + 7 rows");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn csv_sink_flushes_on_drop_without_finish() {
    let dir = tmp_dir("drop");
    {
        let mut sink = CsvReportSink::new(&dir, ReportSections::for_config(&config()));
        for l in layers(3) {
            sink.layer(l);
        }
        // No finish(): dropping the sink drops its BufWriters, which
        // flush buffered rows on the way out.
    }
    let text = std::fs::read_to_string(dir.join("COMPUTE_REPORT.csv")).unwrap();
    assert_eq!(text.lines().count(), 4, "rows must survive an early drop");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An out_dir that never exists makes the very first row fail to open
/// its file: the sink latches the error, every later row is a quiet
/// no-op (no panic), and `finish` surfaces the original failure.
#[test]
fn csv_sink_latches_io_errors_mid_stream() {
    let missing = std::env::temp_dir()
        .join(format!("scalesim-sinks-missing-{}", std::process::id()))
        .join("definitely/not/created");
    let mut csv = CsvReportSink::new(&missing, ReportSections::for_config(&config()));
    let all = layers(5);
    for l in &all {
        csv.layer(l.clone()); // must not panic after the first failure
    }
    let err = csv.finish().expect_err("finish must report the I/O error");
    assert!(err.contains("COMPUTE_REPORT.csv"), "{err}");
}

/// The error-latched CSV sink must not disturb sinks it is teed with:
/// the collector sees every layer in order and the O(1) summary matches
/// the collected reductions exactly.
#[test]
fn teed_collect_and_summary_survive_a_failing_csv_sink() {
    let missing = std::env::temp_dir()
        .join(format!("scalesim-sinks-missing2-{}", std::process::id()))
        .join("nope");
    let mut csv = CsvReportSink::new(&missing, ReportSections::for_config(&config()));
    let mut collect = CollectSink::new();
    let mut summary = RunSummary::new();

    let all = layers(6);
    for l in &all {
        csv.layer(l.clone());
        summary.add(l);
        collect.layer(l.clone());
    }
    assert!(csv.finish().is_err(), "csv sink saw the error");

    let run = collect.into_run();
    assert_eq!(run.layers.len(), 6, "collector kept every layer");
    let names: Vec<_> = run.layers.iter().map(|l| l.name.as_str()).collect();
    assert_eq!(names, ["l0", "l1", "l2", "l3", "l4", "l5"], "in order");
    assert_eq!(summary.layers, 6);
    assert_eq!(summary.total_cycles, run.total_cycles());
    assert_eq!(summary.compute_cycles, run.total_compute_cycles());
    assert_eq!(summary.stall_cycles, run.total_stall_cycles());
    assert_eq!(summary.macs, run.total_macs());
    assert!((summary.energy_mj() - run.total_energy_mj()).abs() < 1e-12);
}

/// The in-memory report sink (what serve-mode responses are built from)
/// matches the batch emitters byte for byte, including the lazy-section
/// policy.
#[test]
fn memory_sink_matches_batch_emitters() {
    let cfg = config();
    let sim = ScaleSim::new(cfg.clone());
    let topo = Topology::from_layers(
        "t",
        vec![
            Layer::gemm_layer("a", 16, 16, 16),
            Layer::gemm_layer("b", 24, 24, 24),
        ],
    );
    let run = sim.run_topology(&topo);
    let mut sink = MemoryReportSink::new(ReportSections::for_config(&cfg));
    for l in &run.layers {
        sink.layer(l.clone());
    }
    let reports = sink.finish();
    let by_name = |name: &str| {
        reports
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("missing {name}"))
            .1
            .clone()
    };
    assert_eq!(by_name("COMPUTE_REPORT.csv"), run.compute_report_csv());
    assert_eq!(by_name("BANDWIDTH_REPORT.csv"), run.bandwidth_report_csv());
    assert_eq!(by_name("ENERGY_REPORT.csv"), run.energy_report_csv());
    assert!(
        !reports.iter().any(|(n, _)| *n == "SPARSE_REPORT.csv"),
        "dense run contributes no sparse report"
    );

    // Zero layers: always-on sections are header-only, optional ones
    // absent — exactly what CsvReportSink creates on disk.
    let empty = MemoryReportSink::new(ReportSections::for_config(&cfg)).finish();
    assert_eq!(empty.len(), 2);
    assert_eq!(empty[0].0, "COMPUTE_REPORT.csv");
    assert_eq!(
        empty[0].1,
        scalesim::RunResult::default().compute_report_csv()
    );
}
