//! Stress, determinism and soak tests for the production serve mode:
//!
//! * byte-identical responses for in-flight request caps of 1, 4 and 16
//!   crossed with scheduler sizes (`SCALESIM_THREADS`) of 16, 4 and 1
//!   under concurrent mixed load (run / sweep / scaleout / version /
//!   deadline), and byte-identical to the one-shot CLI's report files;
//! * a saturating burst answered with typed `busy` errors whose count
//!   matches the `stats` shed counter;
//! * a 10k-request soak (`--ignored`; the CI serve-stress job runs it)
//!   holding the plan-cache byte budget and a bounded RSS.

use scalesim::api::{wire, SimResponse};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Barrier;

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scalesim"))
}

/// Spawns `scalesim serve --listen 127.0.0.1:0` with the given
/// environment knobs, returning the child guard and the bound address
/// parsed from the banner.
fn spawn_serve(env: &[(&str, &str)]) -> (KillOnDrop, String) {
    let mut cmd = bin();
    cmd.args(["serve", "--listen", "127.0.0.1:0"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn scalesim serve --listen");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).unwrap();
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_string();
    (KillOnDrop(child), addr)
}

/// One session in lockstep: send a line, read its response, repeat.
/// Lockstep keeps the socket buffers small on both sides, so large
/// tapes cannot deadlock the test against the server.
fn exchange_tape(addr: &str, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(!response.is_empty(), "server hung up mid-session");
        responses.push(response.trim_end().to_string());
    }
    responses
}

fn stats_snapshot(addr: &str) -> scalesim::api::StatsBody {
    let line = "{\"api\": 1, \"id\": \"stats\", \"stats\": {}}".to_string();
    let responses = exchange_tape(addr, &[line]);
    let (_, result) = wire::decode_response(&responses[0]);
    let SimResponse::Stats(stats) = result.expect("stats answers") else {
        panic!("expected stats body")
    };
    stats
}

fn write_inputs(dir: &Path) -> (PathBuf, PathBuf) {
    let cfg = dir.join("core.cfg");
    std::fs::write(
        &cfg,
        "[architecture_presets]\nArrayHeight : 16\nArrayWidth : 16\n\
         IfmapSramSzkB : 64\nFilterSramSzkB : 64\nOfmapSramSzkB : 32\nDataflow : ws\n",
    )
    .unwrap();
    let topo = dir.join("net_gemm.csv");
    std::fs::write(
        &topo,
        "Layer, M, K, N,\nqkv, 64, 64, 192,\nff1, 64, 64, 256,\n",
    )
    .unwrap();
    (cfg, topo)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scalesim-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The mixed per-client tape. Ids depend on the client index only, so
/// the same client's tape produces the same bytes on every server.
fn mixed_tape(client: usize, cfg: &Path, topo: &Path) -> Vec<String> {
    let file_run = format!(
        "{{\"api\": 1, \"id\": \"c{client}-file\", \"run\": {{\"config\": {{\"path\": {cfg:?}}}, \
         \"topology\": {{\"path\": {topo:?}, \"format\": \"gemm\"}}, \
         \"features\": {{\"energy\": true}}}}}}",
        cfg = cfg.display().to_string(),
        topo = topo.display().to_string(),
    );
    vec![
        format!(
            "{{\"api\": 1, \"id\": \"c{client}-r1\", \"run\": {{\"topology\": \
             {{\"name\": \"t\", \"inline\": \"a, 16, 16, 16,\\nb, 24, 24, 24,\\n\"}}}}}}"
        ),
        format!("{{\"api\": 1, \"id\": \"c{client}-v\", \"version\": {{}}}}"),
        format!(
            "{{\"api\": 1, \"id\": \"c{client}-sw\", \"sweep\": {{\"spec\": \
             {{\"inline\": \"[grid]\\narray = 8x8, 16x16\\nenergy = true\\n\"}}, \"topologies\": \
             [{{\"name\": \"t\", \"inline\": \"a, 16, 16, 16,\\n\"}}]}}}}"
        ),
        // The same run again: a warm cache must not change bytes.
        format!(
            "{{\"api\": 1, \"id\": \"c{client}-r1\", \"run\": {{\"topology\": \
             {{\"name\": \"t\", \"inline\": \"a, 16, 16, 16,\\nb, 24, 24, 24,\\n\"}}}}}}"
        ),
        format!(
            "{{\"api\": 1, \"id\": \"c{client}-sc\", \"scaleout\": {{\"topology\": \
             {{\"name\": \"t\", \"inline\": \"a, 32, 32, 32,\\n\"}}, \"chips\": 4, \
             \"strategy\": \"data\"}}}}"
        ),
        // An already-expired deadline: deterministic typed error.
        format!(
            "{{\"api\": 1, \"id\": \"c{client}-dl\", \"deadline_ms\": 0, \"run\": \
             {{\"topology\": {{\"inline\": \"a, 16, 16, 16,\\n\"}}}}}}"
        ),
        file_run,
        // Stats rides in the mixed tape but is excluded from the
        // byte comparison: its counters depend on interleaving.
        format!("{{\"api\": 1, \"id\": \"c{client}-st\", \"stats\": {{}}}}"),
    ]
}

/// Tape index of the `stats` request — the one load-dependent line.
const STATS_INDEX: usize = 7;

#[test]
fn responses_are_byte_identical_across_pool_sizes_and_to_the_cli() {
    const CLIENTS: usize = 4;
    let dir = tmp_dir("pools");
    let (cfg, topo) = write_inputs(&dir);

    // Reference report bytes from the one-shot CLI.
    let out_dir = dir.join("cli-out");
    let out = bin()
        .args(["-c"])
        .arg(&cfg)
        .args(["-t"])
        .arg(&topo)
        .args(["--gemm", "--energy", "-p"])
        .arg(&out_dir)
        .output()
        .expect("spawn scalesim");
    assert!(
        out.status.success(),
        "cli run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut per_pool: Vec<Vec<Vec<String>>> = Vec::new();
    // Cross in-flight request caps with scheduler sizes (the scheduler
    // reads SCALESIM_THREADS once at startup): bytes must not depend on
    // either knob.
    for (pool, threads) in [("1", "16"), ("4", "4"), ("16", "1")] {
        // Queue deeper than the client count: determinism is a promise
        // about admitted requests, so nothing may shed here.
        let (_guard, addr) = spawn_serve(&[
            ("SCALESIM_SERVE_WORKERS", pool),
            ("SCALESIM_THREADS", threads),
            ("SCALESIM_SERVE_QUEUE", "32"),
            ("SCALESIM_SERVE_SESSIONS", "8"),
        ]);
        // All clients in flight at once, each on its own connection.
        let barrier = Barrier::new(CLIENTS);
        let responses: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    let addr = &addr;
                    let barrier = &barrier;
                    let tape = mixed_tape(client, &cfg, &topo);
                    scope.spawn(move || {
                        barrier.wait();
                        exchange_tape(addr, &tape)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        per_pool.push(responses);
    }

    // Byte-identical across pool sizes, client by client.
    let [pool1, pool4, pool16] = <[Vec<Vec<String>>; 3]>::try_from(per_pool).unwrap();
    for (client, reference) in pool1.iter().enumerate() {
        assert_eq!(
            reference[..STATS_INDEX],
            pool4[client][..STATS_INDEX],
            "client {client}: pool 1 vs pool 4"
        );
        assert_eq!(
            reference[..STATS_INDEX],
            pool16[client][..STATS_INDEX],
            "client {client}: pool 1 vs pool 16"
        );
        // The stats line is load-dependent; require only that every
        // pool answers it with a well-formed stats body.
        for responses in [reference, &pool4[client], &pool16[client]] {
            let (id, result) = wire::decode_response(&responses[STATS_INDEX]);
            assert_eq!(id.as_deref(), Some(format!("c{client}-st").as_str()));
            assert!(
                matches!(result, Ok(SimResponse::Stats(_))),
                "client {client}: stats answer malformed"
            );
        }
        // Warm rerun (tape index 3 repeats index 0, same id).
        assert_eq!(
            reference[0], reference[3],
            "client {client}: warm cache changed bytes"
        );
        // The deadline'd request answers the deterministic typed error.
        let (id, result) = wire::decode_response(&reference[5]);
        assert_eq!(id.as_deref(), Some(format!("c{client}-dl").as_str()));
        let e = result.unwrap_err();
        assert_eq!((e.kind(), e.exit_code()), ("deadline", 124));
        assert_eq!(e.message(), "deadline of 0 ms exceeded");
        // The file-based run carries the exact CLI report bytes.
        let (_, result) = wire::decode_response(&reference[6]);
        let SimResponse::Run(body) = result.unwrap() else {
            panic!("expected run body")
        };
        for report in &body.reports {
            let file = std::fs::read_to_string(out_dir.join(&report.name)).unwrap();
            assert!(
                report.content == file,
                "client {client}: {} differs from the one-shot CLI",
                report.name
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_saturating_burst_gets_typed_busy_and_stats_reports_the_shed_count() {
    const CLIENTS: usize = 8;
    let (_guard, addr) = spawn_serve(&[
        ("SCALESIM_SERVE_WORKERS", "1"),
        ("SCALESIM_SERVE_QUEUE", "1"),
        ("SCALESIM_SERVE_SESSIONS", "32"),
    ]);
    // A sweep heavy enough that one worker is pinned for seconds while
    // the burst lands.
    let bandwidths: Vec<String> = (1..=40).map(|b| b.to_string()).collect();
    let heavy = format!(
        "{{\"api\": 1, \"id\": \"hv\", \"sweep\": {{\"spec\": {{\"inline\": \
         \"[grid]\\nbandwidth = {}\\n\"}}, \"topologies\": [{{\"name\": \"big\", \"inline\": \
         \"l0, 128, 128, 128,\\nl1, 128, 128, 128,\\n\"}}]}}}}",
        bandwidths.join(", ")
    );

    let barrier = Barrier::new(CLIENTS);
    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = &addr;
                let barrier = &barrier;
                let heavy = &heavy;
                scope.spawn(move || {
                    barrier.wait();
                    exchange_tape(addr, std::slice::from_ref(heavy))
                        .pop()
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut busy = 0usize;
    let mut completed = 0usize;
    for response in &responses {
        let (id, result) = wire::decode_response(response);
        assert_eq!(id.as_deref(), Some("hv"));
        match result {
            Ok(SimResponse::Sweep(body)) => {
                assert_eq!(body.runs, 40, "40 grid points x 1 topology");
                completed += 1;
            }
            Ok(other) => panic!("unexpected body: {other:?}"),
            Err(e) => {
                assert_eq!((e.kind(), e.exit_code()), ("busy", 75), "{e}");
                assert_eq!(e.message(), "admission queue full; retry later");
                busy += 1;
            }
        }
    }
    assert!(completed >= 1, "at least the first request must complete");
    assert!(
        busy >= 1,
        "with 1 worker and a 1-deep queue, an 8-client burst must shed"
    );
    let stats = stats_snapshot(&addr);
    assert_eq!(
        stats.shed as usize, busy,
        "stats shed counter must match the busy responses clients saw"
    );
    assert_eq!(stats.deadline_expired, 0);
}

/// 10k mixed requests against a byte-budgeted cache: the budget is a
/// hard ceiling on resident plan bytes, and process RSS stays bounded.
/// Ignored by default (takes tens of seconds); the CI serve-stress job
/// runs it with `--ignored`.
#[test]
#[ignore = "soak test: run with --ignored (CI serve-stress job does)"]
fn soak_ten_thousand_requests_hold_the_cache_budget_and_bounded_rss() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 2500;
    let (guard, addr) = spawn_serve(&[
        ("SCALESIM_SERVE_WORKERS", "4"),
        ("SCALESIM_SERVE_SESSIONS", "8"),
        ("SCALESIM_CACHE_BUDGET_MB", "8"),
    ]);
    let pid = guard.0.id();

    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let addr = &addr;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let mut stream = TcpStream::connect(addr.as_str()).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for i in 0..PER_CLIENT {
                    // Cycle distinct shapes so the cache keeps planning
                    // and evicting; repeat within the cycle for hits.
                    let d = 8 + (i % 32) * 2;
                    let line = if i % 250 == 249 {
                        format!("{{\"api\": 1, \"id\": \"c{client}-s{i}\", \"stats\": {{}}}}")
                    } else {
                        format!(
                            "{{\"api\": 1, \"id\": \"c{client}-{i}\", \"run\": {{\"topology\": \
                             {{\"name\": \"t{d}\", \"inline\": \"a, {d}, {d}, {d},\\n\"}}}}}}"
                        )
                    };
                    stream.write_all(line.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                    let mut response = String::new();
                    reader.read_line(&mut response).unwrap();
                    assert!(!response.is_empty(), "server hung up at request {i}");
                    let (_, result) = wire::decode_response(response.trim_end());
                    assert!(result.is_ok(), "request {i} failed: {response}");
                }
            });
        }
    });

    let stats = stats_snapshot(&addr);
    assert_eq!(stats.cache_budget_bytes, 8 * 1024 * 1024);
    assert!(
        stats.cache_resident_bytes <= stats.cache_budget_bytes,
        "cache exceeded its byte budget: {} > {}",
        stats.cache_resident_bytes,
        stats.cache_budget_bytes
    );
    assert!(stats.cache_hits > 0, "cycled shapes must re-hit the cache");
    let total = (CLIENTS * PER_CLIENT) as u64;
    assert!(
        stats.requests_total >= total,
        "{} < {total}",
        stats.requests_total
    );
    assert_eq!(stats.shed, 0, "nothing sheds at this load");
    assert!(stats.latency_p99_us > 0);

    // RSS bound: a persistent server must not accumulate memory across
    // 10k requests (the cache is budgeted; responses are streamed).
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).unwrap_or_default();
    if let Some(kb) = status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
    {
        assert!(
            kb < 1_000_000,
            "serve RSS grew to {kb} kB over the soak (expected < 1 GB)"
        );
    }
}
