//! Golden-file equivalence suite for every report the engine emits.
//!
//! Each test runs a small, fixed configuration (dense, sparse, layout,
//! DRAM, multi-core, energy, and a sweep grid) and compares the emitted
//! report **bytes** against a checked-in golden copy under
//! `tests/golden/`. The suite serves two purposes:
//!
//! * **Refactor equivalence** — the staged layer pipeline must reproduce
//!   the monolithic engine's output exactly; any drift fails here first.
//! * **Schema stability** — report columns are part of the public
//!   interface (downstream scripts parse them); a column can't be
//!   renamed, re-ordered or re-formatted silently.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! SCALESIM_BLESS=1 cargo test -p scalesim --test golden_reports
//! ```

use scalesim::config::MultiCoreIntegration;
use scalesim::multicore::{L2Config, PartitionGrid, PartitionScheme};
use scalesim::sparse::NmRatio;
use scalesim::sweep::SweepSpec;
use scalesim::systolic::{ArrayShape, Dataflow, Layer, MemoryConfig, Topology};
use scalesim::{run_sweep, ScaleSim, ScaleSimConfig, SparsityMode};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `content` against the golden file `name`, or rewrites the
/// golden when `SCALESIM_BLESS` is set.
fn check(name: &str, content: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("SCALESIM_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, content).unwrap_or_else(|e| panic!("bless {name}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); regenerate with SCALESIM_BLESS=1")
    });
    assert!(
        content == want,
        "{name} drifted from the golden copy.\n\
         If the change is intentional, regenerate with SCALESIM_BLESS=1.\n\
         --- golden ---\n{want}\n--- got ---\n{content}"
    );
}

/// The fixed core every scenario runs on: 16x16 WS, 64/64/32 kB SRAM.
fn base_config() -> ScaleSimConfig {
    let mut config = ScaleSimConfig::default();
    config.core.array = ArrayShape::new(16, 16);
    config.core.dataflow = Dataflow::WeightStationary;
    config.core.memory = MemoryConfig::from_kilobytes(64, 64, 32, 2);
    config
}

/// The fixed workload: three GEMM layers of varied aspect ratio.
fn topology() -> Topology {
    Topology::from_layers(
        "golden",
        vec![
            Layer::gemm_layer("square", 32, 32, 32),
            Layer::gemm_layer("wide", 48, 64, 32),
            Layer::gemm_layer("deep", 40, 24, 96),
        ],
    )
}

#[test]
fn dense_reports_match_golden() {
    let run = ScaleSim::new(base_config()).run_topology(&topology());
    check("dense.COMPUTE_REPORT.csv", &run.compute_report_csv());
    check("dense.BANDWIDTH_REPORT.csv", &run.bandwidth_report_csv());
}

#[test]
fn sparse_reports_match_golden() {
    let mut config = base_config();
    config.sparsity = Some(SparsityMode::LayerWise(NmRatio::new(1, 4).unwrap()));
    let run = ScaleSim::new(config).run_topology(&topology());
    check("sparse.COMPUTE_REPORT.csv", &run.compute_report_csv());
    check("sparse.SPARSE_REPORT.csv", &run.sparse_report_csv());
}

#[test]
fn dram_reports_match_golden() {
    let mut config = base_config();
    config.enable_dram = true;
    let run = ScaleSim::new(config).run_topology(&topology());
    check("dram.COMPUTE_REPORT.csv", &run.compute_report_csv());
    check("dram.BANDWIDTH_REPORT.csv", &run.bandwidth_report_csv());
    check("dram.DRAM_REPORT.csv", &run.dram_report_csv());
}

#[test]
fn layout_analysis_matches_golden() {
    let mut config = base_config();
    config.enable_layout = true;
    let run = ScaleSim::new(config).run_topology(&topology());
    // There is no LAYOUT_REPORT.csv emitter; pin the analysis numbers in
    // an equivalent fixed-format table so the stage can't drift.
    let mut out = String::from("LayerName, ComputeCycles, LayoutCycles, BandwidthCycles\n");
    for l in &run.layers {
        let a = l.layout.as_ref().expect("layout enabled");
        out.push_str(&format!(
            "{}, {}, {}, {}\n",
            l.name, a.compute_cycles, a.layout_cycles, a.bandwidth_cycles
        ));
    }
    check("layout.LAYOUT_ANALYSIS.csv", &out);
}

#[test]
fn multicore_reports_match_golden() {
    let mut config = base_config();
    config.multicore = Some(MultiCoreIntegration {
        grid: PartitionGrid::new(2, 2),
        scheme: PartitionScheme::Spatial,
        l2: Some(L2Config::default()),
    });
    config.enable_energy = true;
    let run = ScaleSim::new(config).run_topology(&topology());
    check("multicore.COMPUTE_REPORT.csv", &run.compute_report_csv());
    check("multicore.ENERGY_REPORT.csv", &run.energy_report_csv());
    // Cores and NoC words aren't in the stock CSVs; pin them too.
    let mut out = String::from("LayerName, Cores, NocWords\n");
    for l in &run.layers {
        out.push_str(&format!("{}, {}, {}\n", l.name, l.cores, l.noc_words));
    }
    check("multicore.GRID.csv", &out);
}

#[test]
fn energy_reports_match_golden() {
    let mut config = base_config();
    config.enable_energy = true;
    let run = ScaleSim::new(config).run_topology(&topology());
    check("energy.ENERGY_REPORT.csv", &run.energy_report_csv());
}

#[test]
fn full_pipeline_reports_match_golden() {
    // All features at once: sparsity + DRAM + layout + energy.
    let mut config = base_config();
    config.sparsity = Some(SparsityMode::LayerWise(NmRatio::new(2, 4).unwrap()));
    config.enable_dram = true;
    config.enable_layout = true;
    config.enable_energy = true;
    let run = ScaleSim::new(config).run_topology(&topology());
    check("full.COMPUTE_REPORT.csv", &run.compute_report_csv());
    check("full.BANDWIDTH_REPORT.csv", &run.bandwidth_report_csv());
    check("full.SPARSE_REPORT.csv", &run.sparse_report_csv());
    check("full.DRAM_REPORT.csv", &run.dram_report_csv());
    check("full.ENERGY_REPORT.csv", &run.energy_report_csv());
}

/// Satellite: schema stability. Every report's column set is pinned by
/// name here (independently of the golden bytes), and every golden file
/// round-trips as well-formed CSV — a renamed, re-ordered or dropped
/// column fails even if someone blesses new golden bytes without
/// reading them.
#[test]
fn report_schemas_are_stable() {
    let expected: &[(&str, &str)] = &[
        (
            "dense.COMPUTE_REPORT.csv",
            "LayerName|ComputeCycles|StallCycles|TotalCycles|Utilization|MappingEfficiency",
        ),
        (
            "dense.BANDWIDTH_REPORT.csv",
            "LayerName|IfmapReadBW|FilterReadBW|OfmapWriteBW|DramThroughputMBps",
        ),
        (
            "sparse.SPARSE_REPORT.csv",
            "Layer|Sparsity|Representation|OriginalFilterBytes|NewFilterBytes",
        ),
        (
            "dram.DRAM_REPORT.csv",
            "LayerName|LineRequests|AvgLatency|ThroughputMBps|RowHitRate|DramEnergyPj|DramPjPerBit|DramAvgPowerMw",
        ),
        (
            "energy.ENERGY_REPORT.csv",
            "LayerName|EnergyMj|AvgPowerW|EdpCyclesMj",
        ),
        (
            "sweep.SWEEP_REPORT.csv",
            "Run|Point|PointLabel|Topology|ArrayRows|ArrayCols|Dataflow|IfmapKB|FilterKB|OfmapKB|Bandwidth|Cores|Dram|Energy|Layout|Layers|TotalCycles|ComputeCycles|StallCycles|Utilization|MACs|EnergyMj|EdpCyclesMj|NocWords|Pareto",
        ),
    ];
    for (file, columns) in expected {
        let text = std::fs::read_to_string(golden_dir().join(file))
            .unwrap_or_else(|e| panic!("missing golden {file} ({e})"));
        let mut lines = text.lines();
        let header: Vec<&str> = lines
            .next()
            .unwrap_or_else(|| panic!("{file} is empty"))
            .split(',')
            .map(str::trim)
            .collect();
        assert_eq!(
            header,
            columns.split('|').collect::<Vec<_>>(),
            "{file}: column schema drifted"
        );
        for (i, row) in lines.enumerate() {
            assert_eq!(
                row.split(',').count(),
                header.len(),
                "{file} row {i} column count"
            );
        }
        assert!(text.lines().count() > 1, "{file} has no data rows");
    }

    // The JSON report must stay parseable in shape: balanced braces and
    // the stable top-level keys (including the generator stamp).
    let json = std::fs::read_to_string(golden_dir().join("sweep.SWEEP_REPORT.json")).unwrap();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    for key in [
        "\"sweep\"",
        "\"generator\"",
        "\"grid_points\"",
        "\"runs\"",
        "\"run_results\"",
        "\"points\"",
        "\"pareto_frontier\"",
    ] {
        assert!(json.contains(key), "SWEEP_REPORT.json lost {key}");
    }
}

#[test]
fn sweep_reports_match_golden() {
    let spec = SweepSpec::parse(
        "[sweep]\nname = golden\n[grid]\n\
         array = 8x8, 16x16\nbandwidth = 4, 10\nenergy = true\n",
    )
    .unwrap();
    let topos = vec![
        topology(),
        Topology::from_layers("tiny", vec![Layer::gemm_layer("only", 16, 16, 16)]),
    ];
    let (report, _) = run_sweep(&spec, &base_config(), &topos, 1).unwrap();
    check("sweep.SWEEP_REPORT.csv", &report.to_csv());
    check("sweep.SWEEP_REPORT.json", &report.to_json());
}
