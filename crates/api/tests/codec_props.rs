//! Seeded property tests of the JSON codec and the wire protocol:
//! round-trip identity for every request/response variant under random
//! payloads, object-key-order preservation, and decoder robustness
//! against arbitrary bytes.
//!
//! These run everywhere (no external crates): a vendored SplitMix64
//! drives deterministic generation, so a failure reproduces from the
//! printed seed. The `proptest`-powered twin of this suite lives in
//! `tests/proptests.rs` behind the non-default `proptests` feature.

use scalesim_api::json::Json;
use scalesim_api::{
    wire, AreaBody, AreaSpec, ConfigSource, Features, Report, RunBody, RunSpec, RunSummaryBody,
    ScaleoutBody, ScaleoutRequest, SimError, SimRequest, SimResponse, StatsBody, SweepBody,
    SweepRequest, TopologyFormat, TopologySource, VersionBody,
};

/// SplitMix64: tiny, seedable, good-enough mixing for test generation.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

/// A string drawn from a pool that stresses every escape path: quotes,
/// backslashes, control characters, multi-byte UTF-8 and surrogates-
/// adjacent code points.
fn arb_string(rng: &mut SplitMix64) -> String {
    const POOL: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1}', '\u{1f}', '\u{7f}',
        'é', 'λ', '中', '\u{2028}', '😀', '\u{fffd}',
    ];
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
        .collect()
}

/// An f64 with at most `decimals` decimal places, so emitters printing
/// with that precision round-trip it exactly.
fn quantized(rng: &mut SplitMix64, max_units: u64, decimals: u32) -> f64 {
    let scale = 10u64.pow(decimals) as f64;
    rng.below(max_units) as f64 / scale
}

fn arb_json(rng: &mut SplitMix64, depth: usize) -> Json {
    let pick = if depth == 0 {
        rng.below(4)
    } else {
        rng.below(6)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.chance(2)),
        // Integers are exact in f64 up to 2^53; stay within.
        2 => Json::Num((rng.below(1 << 53) as i64 - (1 << 52)) as f64),
        3 => Json::Str(arb_string(rng)),
        4 => {
            let n = rng.below(4) as usize;
            Json::Arr((0..n).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.below(4) as usize;
            Json::Obj(
                (0..n)
                    .map(|i| {
                        (
                            format!("k{i}_{}", arb_string(rng)),
                            arb_json(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

#[test]
fn json_values_round_trip_through_emit_and_parse() {
    let mut rng = SplitMix64::new(0xC0DE_C001);
    for case in 0..500 {
        let value = arb_json(&mut rng, 4);
        let text = value.to_string();
        let parsed = Json::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: emitted JSON must parse: {e}\n{text}"));
        assert_eq!(parsed, value, "case {case}: round-trip changed the value");
    }
}

#[test]
fn object_key_order_survives_the_round_trip() {
    let mut rng = SplitMix64::new(0xC0DE_C002);
    for case in 0..200 {
        let n = 1 + rng.below(8) as usize;
        // Distinct keys in a random (insertion) order.
        let keys: Vec<String> = (0..n)
            .map(|i| format!("{}{i}", arb_string(&mut rng)))
            .collect();
        let obj = Json::Obj(
            keys.iter()
                .map(|k| (k.clone(), arb_json(&mut rng, 2)))
                .collect(),
        );
        let parsed = Json::parse(&obj.to_string()).expect("emitted JSON parses");
        let parsed_keys: Vec<&str> = parsed
            .as_object()
            .expect("object stays an object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            parsed_keys,
            keys.iter().map(String::as_str).collect::<Vec<_>>(),
            "case {case}: key order must be insertion order"
        );
    }
}

fn arb_config(rng: &mut SplitMix64) -> ConfigSource {
    match rng.below(3) {
        0 => ConfigSource::Default,
        1 => ConfigSource::Inline(arb_string(rng)),
        _ => ConfigSource::Path(format!("cfg/{}.cfg", rng.below(1000))),
    }
}

fn arb_topology(rng: &mut SplitMix64) -> TopologySource {
    let mut t = if rng.chance(2) {
        TopologySource::inline(arb_string(rng), arb_string(rng))
    } else {
        TopologySource::from_path(format!("t/{}.csv", rng.below(1000)))
    };
    t.format = match rng.below(3) {
        0 => TopologyFormat::Auto,
        1 => TopologyFormat::Conv,
        _ => TopologyFormat::Gemm,
    };
    t
}

fn arb_features(rng: &mut SplitMix64) -> Features {
    Features {
        dram: rng.chance(2),
        energy: rng.chance(2),
        layout: rng.chance(2),
        cores: rng
            .chance(3)
            .then(|| format!("{}x{}", 1 + rng.below(8), 1 + rng.below(8))),
    }
}

fn arb_request(rng: &mut SplitMix64) -> SimRequest {
    match rng.below(6) {
        0 => SimRequest::Run(RunSpec {
            config: arb_config(rng),
            topology: arb_topology(rng),
            features: arb_features(rng),
        }),
        1 => SimRequest::Sweep(SweepRequest {
            // A sweep spec cannot be "default" (the decoder rejects it:
            // a sweep needs a grid), so draw inline/path only.
            spec: if rng.chance(2) {
                ConfigSource::Inline(arb_string(rng))
            } else {
                ConfigSource::Path(format!("grid/{}.toml", rng.below(1000)))
            },
            base_config: arb_config(rng),
            topologies: (0..rng.below(3)).map(|_| arb_topology(rng)).collect(),
            shards: 1 + rng.below(16) as usize,
        }),
        2 => {
            let mut req = ScaleoutRequest::for_topology(arb_topology(rng));
            req.config = arb_config(rng);
            req.features = arb_features(rng);
            req.chips = rng.chance(2).then(|| 1 + rng.below(64) as usize);
            req.fabric = rng.chance(3).then(|| "mesh".to_string());
            req.link_gbps = rng.chance(3).then(|| rng.below(400) as f64);
            req.link_latency = rng.chance(3).then(|| rng.below(5000));
            req.strategy = rng.chance(3).then(|| "data".to_string());
            req.microbatches = rng.chance(3).then(|| 1 + rng.below(16) as usize);
            SimRequest::Scaleout(req)
        }
        3 => SimRequest::AreaReport(AreaSpec {
            config: arb_config(rng),
            features: arb_features(rng),
        }),
        4 => SimRequest::Version,
        _ => SimRequest::Stats,
    }
}

#[test]
fn every_request_variant_round_trips_with_random_payloads() {
    let mut rng = SplitMix64::new(0xC0DE_C003);
    for case in 0..300 {
        let request = arb_request(&mut rng);
        let id = rng
            .chance(2)
            .then(|| format!("id-{}", arb_string(&mut rng)));
        // JSON numbers are exact up to 2^53 (documented codec limit);
        // 2^53 ms is ~285k years, so real deadlines never get close.
        let deadline = rng.chance(2).then(|| rng.next() >> 11);
        let line = wire::encode_request_with_deadline(id.as_deref(), deadline, &request);
        let decoded = wire::decode_request_full(&line);
        assert_eq!(decoded.id, id, "case {case}: id\n{line}");
        assert_eq!(
            decoded.deadline_ms, deadline,
            "case {case}: deadline\n{line}"
        );
        let round_tripped = decoded
            .request
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}\n{line}"));
        assert_eq!(round_tripped, request, "case {case}\n{line}");
    }
}

fn arb_reports(rng: &mut SplitMix64) -> Vec<Report> {
    (0..rng.below(3))
        .map(|i| Report {
            name: format!("R{i}.csv"),
            content: arb_string(rng),
        })
        .collect()
}

fn arb_response(rng: &mut SplitMix64) -> SimResponse {
    match rng.below(6) {
        0 => SimResponse::Run(RunBody {
            summary: RunSummaryBody {
                layers: rng.below(100) as usize,
                total_cycles: rng.next() >> 12,
                compute_cycles: rng.next() >> 12,
                stall_cycles: rng.next() >> 12,
                macs: rng.next() >> 12,
                utilization: quantized(rng, 10_000, 4),
                energy_mj: quantized(rng, 1 << 30, 6),
                noc_words: rng.next() >> 12,
            },
            reports: arb_reports(rng),
        }),
        1 => SimResponse::Sweep(SweepBody {
            grid_points: rng.below(1000) as usize,
            runs: rng.below(1000) as usize,
            pareto_frontier: (0..rng.below(4)).map(|i| format!("p{i}")).collect(),
            reports: arb_reports(rng),
        }),
        2 => SimResponse::Scaleout(ScaleoutBody {
            chips: 1 + rng.below(512),
            strategy: "dp".into(),
            fabric: "mesh 2x2".into(),
            layers: rng.below(64) as usize,
            total_cycles: rng.next() >> 12,
            compute_cycles: rng.next() >> 12,
            comm_cycles: rng.next() >> 12,
            overlapped_cycles: rng.next() >> 12,
            exposed_cycles: rng.next() >> 12,
            bubble_cycles: rng.next() >> 12,
            utilization: quantized(rng, 10_000, 4),
            reports: arb_reports(rng),
        }),
        3 => SimResponse::Area(AreaBody {
            total_mm2: quantized(rng, 1 << 24, 4),
            pe_array_mm2: quantized(rng, 1 << 24, 4),
            sram_mm2: quantized(rng, 1 << 24, 4),
            noc_mm2: quantized(rng, 1 << 24, 4),
            dram_ctrl_mm2: quantized(rng, 1 << 24, 4),
            reports: arb_reports(rng),
        }),
        4 => SimResponse::Version(VersionBody {
            version: format!("scalesim {}", rng.below(100)),
            api: rng.below(10) as u32,
        }),
        _ => SimResponse::Stats(StatsBody {
            cache_hits: rng.next() >> 12,
            cache_misses: rng.next() >> 12,
            cache_plans: rng.below(10_000),
            cache_evictions: rng.next() >> 12,
            cache_resident_bytes: rng.next() >> 12,
            cache_budget_bytes: rng.next() >> 12,
            cache_hit_rate: quantized(rng, 10_000, 4),
            requests_total: rng.next() >> 12,
            completed: rng.next() >> 12,
            shed: rng.next() >> 12,
            deadline_expired: rng.next() >> 12,
            in_flight: rng.below(1000),
            latency_count: rng.next() >> 12,
            latency_p50_us: rng.next() >> 12,
            latency_p99_us: rng.next() >> 12,
            latency_max_us: rng.next() >> 12,
            sched_workers: rng.below(128),
            sched_steals: rng.next() >> 12,
            sched_spawns: rng.next() >> 12,
            sched_park_wakeups: rng.next() >> 12,
            span_totals: std::array::from_fn(|_| rng.next() >> 12),
        }),
    }
}

fn arb_error(rng: &mut SplitMix64) -> SimError {
    let message = arb_string(rng);
    match rng.below(6) {
        0 => SimError::Config(message),
        1 => SimError::Topology(message),
        2 => SimError::Io(message),
        3 => SimError::Internal(message),
        4 => SimError::Busy(message),
        _ => SimError::Deadline(message),
    }
}

#[test]
fn every_response_variant_round_trips_with_random_payloads() {
    let mut rng = SplitMix64::new(0xC0DE_C004);
    for case in 0..300 {
        let id = rng.chance(2).then(|| format!("id{case}"));
        let result: Result<SimResponse, SimError> = if rng.chance(4) {
            Err(arb_error(&mut rng))
        } else {
            Ok(arb_response(&mut rng))
        };
        let line = wire::encode_response(id.as_deref(), &result);
        assert!(
            !line.contains('\n'),
            "case {case}: a response must be one line\n{line:?}"
        );
        let (decoded_id, decoded) = wire::decode_response(&line);
        assert_eq!(decoded_id, id, "case {case}\n{line}");
        match (&result, &decoded) {
            (Ok(expected), Ok(actual)) => {
                assert_eq!(actual, expected, "case {case}\n{line}")
            }
            (Err(expected), Err(actual)) => {
                assert_eq!(actual.kind(), expected.kind(), "case {case}\n{line}");
                assert_eq!(actual.message(), expected.message(), "case {case}\n{line}");
                assert_eq!(actual.exit_code(), expected.exit_code(), "case {case}");
            }
            _ => panic!("case {case}: ok/err flipped in transit\n{line}"),
        }
    }
}

#[test]
fn arbitrary_bytes_never_panic_the_decoder() {
    let mut rng = SplitMix64::new(0xC0DE_C005);
    // Raw byte soup, interpreted as (lossy) UTF-8.
    for _ in 0..1500 {
        let len = rng.below(200) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        let decoded = wire::decode_request_full(&text);
        // Whatever happened, it terminated and produced a typed result.
        let _ = (decoded.id, decoded.deadline_ms, decoded.request.is_ok());
        let _ = Json::parse(&text);
    }
    // Mutations of a valid request: single-byte corruption anywhere.
    let valid = wire::encode_request_with_deadline(
        Some("m"),
        Some(250),
        &SimRequest::Run(RunSpec {
            config: ConfigSource::Default,
            topology: TopologySource::inline("t", "a, 8, 8, 8,\n"),
            features: Features::default(),
        }),
    );
    for _ in 0..1500 {
        let mut bytes = valid.clone().into_bytes();
        let hits = 1 + rng.below(3);
        for _ in 0..hits {
            let at = rng.below(bytes.len() as u64) as usize;
            bytes[at] = rng.next() as u8;
        }
        let text = String::from_utf8_lossy(&bytes);
        let _ = wire::decode_request_full(&text);
    }
}

#[test]
fn nesting_depth_stays_capped_for_any_bracket_soup() {
    let mut rng = SplitMix64::new(0xC0DE_C006);
    for _ in 0..50 {
        let depth = 129 + rng.below(4000) as usize;
        let open = if rng.chance(2) { "[" } else { "{\"k\":" };
        let soup: String = open.repeat(depth);
        let err = Json::parse(&soup).expect_err("over-deep input must error");
        assert!(err.contains("nested"), "depth error names the cap: {err}");
        // Through the wire decoder it is a typed config error, not a
        // stack overflow.
        let decoded = wire::decode_request_full(&soup);
        assert_eq!(decoded.request.unwrap_err().kind(), "config");
    }
}
