//! Property-based tests of the JSON codec and wire protocol, powered
//! by `proptest` for deeper shrinking than the seeded suite in
//! `tests/codec_props.rs` (which covers the same invariants and always
//! runs).

// The `proptest` crate is not vendored (offline build); this suite only
// compiles with `--features proptests` where the registry is reachable
// and `proptest` has been added as a dev-dependency.
#![cfg(feature = "proptests")]

use proptest::prelude::*;
use scalesim_api::json::Json;
use scalesim_api::{
    wire, ConfigSource, Features, RunSpec, SimRequest, TopologyFormat, TopologySource,
};

fn json_strategy() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Integers are exact in f64 up to 2^53; the emitter guarantees
        // round-trips only inside that range.
        (-(1i64 << 53)..(1i64 << 53)).prop_map(|n| Json::Num(n as f64)),
        ".{0,24}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            prop::collection::vec((".{0,8}", inner), 0..6)
                .prop_map(|kvs| Json::Obj(kvs.into_iter().collect())),
        ]
    })
}

fn request_strategy() -> impl Strategy<Value = SimRequest> {
    prop_oneof![
        Just(SimRequest::Version),
        Just(SimRequest::Stats),
        (".{0,32}", ".{0,64}", any::<bool>(), any::<bool>()).prop_map(
            |(name, csv, dram, energy)| {
                SimRequest::Run(RunSpec {
                    config: ConfigSource::Default,
                    topology: {
                        let mut t = TopologySource::inline(name, csv);
                        t.format = TopologyFormat::Gemm;
                        t
                    },
                    features: Features {
                        dram,
                        energy,
                        ..Default::default()
                    },
                })
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse(emit(v)) is the identity on JSON values (within the
    /// documented 2^53 integer range).
    #[test]
    fn json_round_trips(v in json_strategy()) {
        let text = v.to_string();
        prop_assert_eq!(Json::parse(&text).unwrap(), v);
    }

    /// Object key order is insertion order, preserved through a
    /// round-trip.
    #[test]
    fn key_order_is_preserved(keys in prop::collection::vec("[a-z]{1,8}", 1..8)) {
        let obj = Json::Obj(
            keys.iter().cloned().map(|k| (k, Json::Null)).collect(),
        );
        let parsed = Json::parse(&obj.to_string()).unwrap();
        let parsed_keys: Vec<String> = parsed
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        prop_assert_eq!(parsed_keys, keys);
    }

    /// decode(encode(request)) is the identity, with the envelope id
    /// and deadline carried through.
    #[test]
    fn requests_round_trip(
        request in request_strategy(),
        id in prop::option::of(".{0,16}"),
        deadline in prop::option::of(0u64..(1 << 53)),
    ) {
        let line = wire::encode_request_with_deadline(id.as_deref(), deadline, &request);
        let decoded = wire::decode_request_full(&line);
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(decoded.deadline_ms, deadline);
        prop_assert_eq!(decoded.request.unwrap(), request);
    }

    /// No input string can panic the parser or escape the depth cap.
    #[test]
    fn arbitrary_input_never_panics(text in ".{0,256}") {
        let _ = Json::parse(&text);
        let decoded = wire::decode_request_full(&text);
        let _ = (decoded.id, decoded.deadline_ms, decoded.request.is_ok());
    }
}
