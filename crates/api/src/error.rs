//! The stable [`SimError`] taxonomy every public entry point reports
//! through.
//!
//! Six categories cover everything the simulator can reject, each with
//! a fixed wire tag and a fixed process exit code (used by the
//! `scalesim` binary):
//!
//! | variant | wire `kind` | exit code | typical causes |
//! |---|---|---|---|
//! | [`SimError::Config`] | `config` | 2 | bad `.cfg` key, invalid core geometry, malformed request |
//! | [`SimError::Topology`] | `topology` | 3 | CSV parse error, duplicate layer name, empty topology |
//! | [`SimError::Io`] | `io` | 4 | unreadable input file, unwritable output directory |
//! | [`SimError::Internal`] | `internal` | 70 | a caught panic — always a bug, please report |
//! | [`SimError::Busy`] | `busy` | 75 | server at capacity (admission queue or session cap); retry later |
//! | [`SimError::Deadline`] | `deadline` | 124 | the request's `deadline_ms` expired before it finished |
//!
//! Exit code 70 is BSD's `EX_SOFTWARE` and 75 its `EX_TEMPFAIL` (the
//! retryable one); 124 matches GNU `timeout(1)`. 2–4 avoid 1 (generic
//! CLI usage failure) and anything shells reserve (126+).

use std::error::Error;
use std::fmt;

/// A categorized, displayable simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The architecture configuration or the request itself is invalid.
    Config(String),
    /// The workload topology is invalid (parse failure, duplicate layer
    /// name, no layers).
    Topology(String),
    /// An input could not be read or an output could not be written.
    Io(String),
    /// An internal invariant failed (caught panic); always a bug.
    Internal(String),
    /// The server is at capacity (admission queue full or session cap
    /// reached); the request was shed, not queued. Retry later.
    Busy(String),
    /// The request's `deadline_ms` budget expired before it finished.
    Deadline(String),
}

impl SimError {
    /// The stable wire tag (`config` / `topology` / `io` / `internal` /
    /// `busy` / `deadline`).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Config(_) => "config",
            SimError::Topology(_) => "topology",
            SimError::Io(_) => "io",
            SimError::Internal(_) => "internal",
            SimError::Busy(_) => "busy",
            SimError::Deadline(_) => "deadline",
        }
    }

    /// The process exit code the `scalesim` binary maps this category to.
    pub fn exit_code(&self) -> u8 {
        match self {
            SimError::Config(_) => 2,
            SimError::Topology(_) => 3,
            SimError::Io(_) => 4,
            SimError::Internal(_) => 70,
            SimError::Busy(_) => 75,
            SimError::Deadline(_) => 124,
        }
    }

    /// The message without the category prefix.
    pub fn message(&self) -> &str {
        match self {
            SimError::Config(m)
            | SimError::Topology(m)
            | SimError::Io(m)
            | SimError::Internal(m)
            | SimError::Busy(m)
            | SimError::Deadline(m) => m,
        }
    }

    /// Builds the error for a decoded wire `kind` tag (unknown tags
    /// collapse to [`SimError::Internal`], preserving the message).
    pub fn from_kind(kind: &str, message: String) -> SimError {
        match kind {
            "config" => SimError::Config(message),
            "topology" => SimError::Topology(message),
            "io" => SimError::Io(message),
            "busy" => SimError::Busy(message),
            "deadline" => SimError::Deadline(message),
            _ => SimError::Internal(message),
        }
    }

    /// Wraps a caught panic payload (what `std::panic::catch_unwind`
    /// returns) as an [`SimError::Internal`].
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> SimError {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string());
        SimError::Internal(format!("panic: {msg}"))
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(m) => write!(f, "configuration error: {m}"),
            SimError::Topology(m) => write!(f, "topology error: {m}"),
            SimError::Io(m) => write!(f, "io error: {m}"),
            SimError::Internal(m) => write!(f, "internal error: {m}"),
            SimError::Busy(m) => write!(f, "busy: {m}"),
            SimError::Deadline(m) => write!(f, "deadline exceeded: {m}"),
        }
    }
}

impl Error for SimError {}

impl From<scalesim_systolic::SimError> for SimError {
    /// Maps the engine-level error type into the public taxonomy:
    /// configuration problems stay `Config`, anything about a layer or
    /// a topology row becomes `Topology`.
    fn from(e: scalesim_systolic::SimError) -> Self {
        use scalesim_systolic::SimError as Core;
        match &e {
            Core::InvalidConfig(_) => SimError::Config(e.to_string()),
            Core::ParseTopology { .. } | Core::InvalidLayer(_) => SimError::Topology(e.to_string()),
            _ => SimError::Internal(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_pinned() {
        assert_eq!(SimError::Config("x".into()).exit_code(), 2);
        assert_eq!(SimError::Topology("x".into()).exit_code(), 3);
        assert_eq!(SimError::Io("x".into()).exit_code(), 4);
        assert_eq!(SimError::Internal("x".into()).exit_code(), 70);
        assert_eq!(SimError::Busy("x".into()).exit_code(), 75);
        assert_eq!(SimError::Deadline("x".into()).exit_code(), 124);
    }

    #[test]
    fn kinds_round_trip() {
        for e in [
            SimError::Config("a".into()),
            SimError::Topology("b".into()),
            SimError::Io("c".into()),
            SimError::Internal("d".into()),
            SimError::Busy("e".into()),
            SimError::Deadline("f".into()),
        ] {
            assert_eq!(SimError::from_kind(e.kind(), e.message().to_string()), e);
        }
    }

    #[test]
    fn core_errors_map_into_the_taxonomy() {
        use scalesim_systolic::SimError as Core;
        let cfg: SimError = Core::InvalidConfig("zero array".into()).into();
        assert_eq!(cfg.kind(), "config");
        let topo: SimError = Core::ParseTopology {
            line: 3,
            reason: "bad row".into(),
        }
        .into();
        assert_eq!(topo.kind(), "topology");
        assert!(topo.message().contains("line 3"), "{topo}");
    }

    #[test]
    fn panic_payloads_become_internal() {
        let e = SimError::from_panic(Box::new("boom"));
        assert_eq!(e.kind(), "internal");
        assert!(e.message().contains("boom"));
        let e = SimError::from_panic(Box::new(String::from("sboom")));
        assert!(e.message().contains("sboom"));
    }
}
