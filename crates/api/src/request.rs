//! The typed request surface: [`SimRequest`] and its per-command specs.
//!
//! Requests are plain data — no file is read and nothing is validated
//! beyond the JSON shape until a service executes them. Inputs
//! (architecture `.cfg`, topology CSV, sweep spec) can travel **inline**
//! in the request or as **paths** resolved by the serving process, so
//! the same request type drives both an embedded library call and a
//! remote `scalesim serve` instance.
//!
//! See `docs/API.md` for the full JSON schema; the JSON mapping
//! implemented here is `to_json`/`from_json` on each type.

use crate::error::SimError;
use crate::json::Json;

/// Where an architecture `.cfg` (or sweep spec) comes from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ConfigSource {
    /// The built-in default core (32×32 OS, 1 MB/1 MB/256 kB SRAM).
    #[default]
    Default,
    /// Read the file at this path (resolved by the serving process).
    Path(String),
    /// The `.cfg` text itself, carried in the request.
    Inline(String),
}

impl ConfigSource {
    fn to_json(&self) -> Json {
        match self {
            ConfigSource::Default => Json::Str("default".into()),
            ConfigSource::Path(p) => Json::Obj(vec![("path".into(), Json::Str(p.clone()))]),
            ConfigSource::Inline(t) => Json::Obj(vec![("inline".into(), Json::Str(t.clone()))]),
        }
    }

    fn from_json(v: &Json, what: &str) -> Result<ConfigSource, SimError> {
        match v {
            Json::Str(s) if s == "default" => Ok(ConfigSource::Default),
            Json::Obj(_) => {
                if let Some(p) = v.get("path").and_then(Json::as_str) {
                    Ok(ConfigSource::Path(p.to_string()))
                } else if let Some(t) = v.get("inline").and_then(Json::as_str) {
                    Ok(ConfigSource::Inline(t.to_string()))
                } else {
                    Err(bad(format!(
                        "{what}: expected \"default\", {{\"path\": …}} or {{\"inline\": …}}"
                    )))
                }
            }
            _ => Err(bad(format!(
                "{what}: expected \"default\", {{\"path\": …}} or {{\"inline\": …}}"
            ))),
        }
    }
}

/// How topology CSV rows should be interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologyFormat {
    /// Detect conv vs GEMM from the first data row (≥ 8 columns → conv).
    #[default]
    Auto,
    /// Convolution rows (`name, ifh, ifw, fh, fw, c, n, stride`).
    Conv,
    /// GEMM rows (`name, M, K, N`).
    Gemm,
}

impl TopologyFormat {
    fn tag(self) -> &'static str {
        match self {
            TopologyFormat::Auto => "auto",
            TopologyFormat::Conv => "conv",
            TopologyFormat::Gemm => "gemm",
        }
    }

    fn parse(tag: &str) -> Result<TopologyFormat, SimError> {
        match tag {
            "auto" => Ok(TopologyFormat::Auto),
            "conv" => Ok(TopologyFormat::Conv),
            "gemm" => Ok(TopologyFormat::Gemm),
            other => Err(bad(format!(
                "topology format '{other}' (expected auto/conv/gemm)"
            ))),
        }
    }
}

/// A workload topology: CSV rows plus how to parse and name them, or a
/// named workload from the built-in registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySource {
    /// Name used in reports (defaults to the path's file stem, or
    /// `workload` for inline CSV with no name).
    pub name: Option<String>,
    /// CSV from a path (resolved by the serving process)…
    pub path: Option<String>,
    /// …or carried inline…
    pub inline: Option<String>,
    /// …or a built-in registry workload (`resnet18`, `vit-base`, an
    /// llm preset like `llama-7b[:decode]`, …). Exactly one of
    /// `path`/`inline`/`workload` is set.
    pub workload: Option<String>,
    /// Row interpretation (ignored for registry workloads).
    pub format: TopologyFormat,
}

impl TopologySource {
    /// A topology read from a file path.
    pub fn from_path(path: impl Into<String>) -> Self {
        Self {
            name: None,
            path: Some(path.into()),
            inline: None,
            workload: None,
            format: TopologyFormat::Auto,
        }
    }

    /// A topology carried inline, with the name reports will use.
    pub fn inline(name: impl Into<String>, csv: impl Into<String>) -> Self {
        Self {
            name: Some(name.into()),
            path: None,
            inline: Some(csv.into()),
            workload: None,
            format: TopologyFormat::Auto,
        }
    }

    /// A named workload resolved from the serving process's registry.
    pub fn from_workload(workload: impl Into<String>) -> Self {
        Self {
            name: None,
            path: None,
            inline: None,
            workload: Some(workload.into()),
            format: TopologyFormat::Auto,
        }
    }

    /// Sets the row format (builder style).
    pub fn with_format(mut self, format: TopologyFormat) -> Self {
        self.format = format;
        self
    }

    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(n) = &self.name {
            fields.push(("name".into(), Json::Str(n.clone())));
        }
        if let Some(p) = &self.path {
            fields.push(("path".into(), Json::Str(p.clone())));
        }
        if let Some(t) = &self.inline {
            fields.push(("inline".into(), Json::Str(t.clone())));
        }
        if let Some(w) = &self.workload {
            fields.push(("workload".into(), Json::Str(w.clone())));
        }
        if self.format != TopologyFormat::Auto {
            fields.push(("format".into(), Json::Str(self.format.tag().into())));
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<TopologySource, SimError> {
        if v.as_object().is_none() {
            return Err(bad("topology: expected an object"));
        }
        let name = v.get("name").and_then(Json::as_str).map(str::to_string);
        let path = v.get("path").and_then(Json::as_str).map(str::to_string);
        let inline = v.get("inline").and_then(Json::as_str).map(str::to_string);
        let workload = v.get("workload").and_then(Json::as_str).map(str::to_string);
        let sources = path.iter().count() + inline.iter().count() + workload.iter().count();
        if sources != 1 {
            return Err(bad(
                "topology: exactly one of \"path\", \"inline\" and \"workload\" is required",
            ));
        }
        let format = match v.get("format") {
            Some(f) => TopologyFormat::parse(
                f.as_str()
                    .ok_or_else(|| bad("topology format must be a string"))?,
            )?,
            None => TopologyFormat::Auto,
        };
        Ok(TopologySource {
            name,
            path,
            inline,
            workload,
            format,
        })
    }
}

/// The per-run feature toggles (the CLI's `--dram`/`--energy`/`--layout`
/// flags plus the multi-core grid).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Features {
    /// Run the cycle-accurate DRAM flow (§V).
    pub dram: bool,
    /// Run energy/power estimation (§VII).
    pub energy: bool,
    /// Run bank-conflict layout analysis (§VI).
    pub layout: bool,
    /// Partition across a tensor-core grid, `"RxC"` (§III); None or
    /// `"1x1"` = single core.
    pub cores: Option<String>,
}

impl Features {
    fn is_default(&self) -> bool {
        self == &Features::default()
    }

    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if self.dram {
            fields.push(("dram".into(), Json::Bool(true)));
        }
        if self.energy {
            fields.push(("energy".into(), Json::Bool(true)));
        }
        if self.layout {
            fields.push(("layout".into(), Json::Bool(true)));
        }
        if let Some(c) = &self.cores {
            fields.push(("cores".into(), Json::Str(c.clone())));
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<Features, SimError> {
        if v.as_object().is_none() {
            return Err(bad("features: expected an object"));
        }
        let flag = |key: &str| -> Result<bool, SimError> {
            match v.get(key) {
                None => Ok(false),
                Some(b) => b
                    .as_bool()
                    .ok_or_else(|| bad(format!("features.{key} must be a boolean"))),
            }
        };
        Ok(Features {
            dram: flag("dram")?,
            energy: flag("energy")?,
            layout: flag("layout")?,
            cores: v.get("cores").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// One simulation of one topology (the CLI's default command).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Architecture configuration.
    pub config: ConfigSource,
    /// The workload.
    pub topology: TopologySource,
    /// Feature toggles.
    pub features: Features,
}

/// A design-space sweep (the CLI's `sweep` subcommand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// The sweep grid spec (`[grid]`/`[workloads]` cfg text); Default is
    /// rejected at execution time — a sweep needs a grid.
    pub spec: ConfigSource,
    /// Base architecture the grid overrides.
    pub base_config: ConfigSource,
    /// Topologies appended to the spec's `[workloads]` list.
    pub topologies: Vec<TopologySource>,
    /// Executor shard count (≥ 1; reports are byte-identical for any
    /// value).
    pub shards: usize,
}

/// A multi-chip scale-out simulation (the CLI's `scaleout`
/// subcommand).
///
/// The scale-out parameters (chip count, fabric, link characteristics,
/// strategy) come from the configuration's `[scaleout]` section; every
/// field here is an **override** applied on top of it (or on top of
/// the built-in defaults when the section is absent). Fabric and
/// strategy travel as strings and are validated by the serving process
/// with a typed `config` error.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleoutRequest {
    /// Architecture configuration (its `[scaleout]` section seeds the
    /// scale-out parameters).
    pub config: ConfigSource,
    /// The workload.
    pub topology: TopologySource,
    /// Feature toggles for the per-chip simulations.
    pub features: Features,
    /// Chip-count override.
    pub chips: Option<usize>,
    /// Fabric override (`ring` / `mesh` / `switch`).
    pub fabric: Option<String>,
    /// Per-link bandwidth override, GB/s.
    pub link_gbps: Option<f64>,
    /// Per-hop latency override, core cycles.
    pub link_latency: Option<u64>,
    /// Strategy override (`data` / `tensor` / `pipeline`).
    pub strategy: Option<String>,
    /// Pipeline microbatch override.
    pub microbatches: Option<usize>,
}

impl ScaleoutRequest {
    /// A request for `topology` with no overrides: the configuration's
    /// `[scaleout]` section (or the built-in defaults) rules.
    pub fn for_topology(topology: TopologySource) -> Self {
        Self {
            config: ConfigSource::Default,
            topology,
            features: Features::default(),
            chips: None,
            fabric: None,
            link_gbps: None,
            link_latency: None,
            strategy: None,
            microbatches: None,
        }
    }
}

/// An LLM workload simulation (the CLI's `llm` subcommand).
///
/// The model comes from the configuration's `[llm]` section and/or the
/// `workload` preset name; every other field is an **override** applied
/// on top. At least one of the two must name a model — a request with
/// neither is rejected by the serving process with a typed `config`
/// error.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LlmRequest {
    /// Architecture configuration (its `[llm]` section seeds the model
    /// spec).
    pub config: ConfigSource,
    /// Preset name override (`gpt2-xl`, `llama-7b`, `llama-70b`,
    /// `mixtral-8x7b`).
    pub workload: Option<String>,
    /// Phase override (`prefill` / `decode`), validated by the serving
    /// process.
    pub phase: Option<String>,
    /// Prompt sequence-length override.
    pub seq: Option<usize>,
    /// Batch-size override.
    pub batch: Option<usize>,
    /// KV-cache context-length override (defaults to the sequence
    /// length).
    pub context: Option<usize>,
    /// Feature toggles.
    pub features: Features,
}

impl LlmRequest {
    /// A request for a named preset with no other overrides.
    pub fn for_workload(workload: impl Into<String>) -> Self {
        Self {
            workload: Some(workload.into()),
            ..Self::default()
        }
    }
}

/// A silicon-area estimate for a configured core.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AreaSpec {
    /// Architecture configuration.
    pub config: ConfigSource,
    /// Feature toggles (layout banks and DRAM channels contribute area).
    pub features: Features,
}

/// A versioned simulation request — the single entry point every
/// front end (CLI, `scalesim serve`, embedding tools) goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum SimRequest {
    /// Simulate one topology.
    Run(RunSpec),
    /// Run a design-space sweep.
    Sweep(SweepRequest),
    /// Simulate a multi-chip scale-out execution.
    Scaleout(ScaleoutRequest),
    /// Generate and simulate an LLM workload (prefill or decode).
    Llm(LlmRequest),
    /// Report the configured accelerator's silicon area.
    AreaReport(AreaSpec),
    /// Report the server's version and API level.
    Version,
    /// Report the server's runtime metrics: plan-cache stats, requests
    /// in flight/shed, and handle-latency percentiles. Answered inline
    /// (never queued), so it stays observable under saturation.
    Stats,
    /// Export the process's recorded span rings as Chrome trace-event
    /// JSON. Answered inline (never queued); the body is empty when
    /// tracing was never enabled.
    Trace,
}

impl SimRequest {
    /// The wire tag this request is keyed by in the envelope
    /// (`run` / `sweep` / `scaleout` / `llm` / `area` / `version` /
    /// `stats` / `trace`).
    pub fn tag(&self) -> &'static str {
        match self {
            SimRequest::Run(_) => "run",
            SimRequest::Sweep(_) => "sweep",
            SimRequest::Scaleout(_) => "scaleout",
            SimRequest::Llm(_) => "llm",
            SimRequest::AreaReport(_) => "area",
            SimRequest::Version => "version",
            SimRequest::Stats => "stats",
            SimRequest::Trace => "trace",
        }
    }

    /// The request body as a JSON value (the envelope adds `api`/`id`;
    /// see [`crate::wire`]).
    pub fn to_json(&self) -> Json {
        match self {
            SimRequest::Run(r) => {
                let mut fields = Vec::new();
                if r.config != ConfigSource::Default {
                    fields.push(("config".into(), r.config.to_json()));
                }
                fields.push(("topology".into(), r.topology.to_json()));
                if !r.features.is_default() {
                    fields.push(("features".into(), r.features.to_json()));
                }
                Json::Obj(fields)
            }
            SimRequest::Sweep(s) => {
                let mut fields = vec![("spec".into(), s.spec.to_json())];
                if s.base_config != ConfigSource::Default {
                    fields.push(("base_config".into(), s.base_config.to_json()));
                }
                if !s.topologies.is_empty() {
                    fields.push((
                        "topologies".into(),
                        Json::Arr(s.topologies.iter().map(|t| t.to_json()).collect()),
                    ));
                }
                if s.shards != 1 {
                    fields.push(("shards".into(), Json::Num(s.shards as f64)));
                }
                Json::Obj(fields)
            }
            SimRequest::Scaleout(s) => {
                let mut fields = Vec::new();
                if s.config != ConfigSource::Default {
                    fields.push(("config".into(), s.config.to_json()));
                }
                fields.push(("topology".into(), s.topology.to_json()));
                if !s.features.is_default() {
                    fields.push(("features".into(), s.features.to_json()));
                }
                if let Some(chips) = s.chips {
                    fields.push(("chips".into(), Json::Num(chips as f64)));
                }
                if let Some(f) = &s.fabric {
                    fields.push(("fabric".into(), Json::Str(f.clone())));
                }
                if let Some(g) = s.link_gbps {
                    fields.push(("link_gbps".into(), Json::Num(g)));
                }
                if let Some(l) = s.link_latency {
                    fields.push(("link_latency".into(), Json::Num(l as f64)));
                }
                if let Some(st) = &s.strategy {
                    fields.push(("strategy".into(), Json::Str(st.clone())));
                }
                if let Some(m) = s.microbatches {
                    fields.push(("microbatches".into(), Json::Num(m as f64)));
                }
                Json::Obj(fields)
            }
            SimRequest::Llm(l) => {
                let mut fields = Vec::new();
                if l.config != ConfigSource::Default {
                    fields.push(("config".into(), l.config.to_json()));
                }
                if let Some(w) = &l.workload {
                    fields.push(("workload".into(), Json::Str(w.clone())));
                }
                if let Some(p) = &l.phase {
                    fields.push(("phase".into(), Json::Str(p.clone())));
                }
                if let Some(s) = l.seq {
                    fields.push(("seq".into(), Json::Num(s as f64)));
                }
                if let Some(b) = l.batch {
                    fields.push(("batch".into(), Json::Num(b as f64)));
                }
                if let Some(c) = l.context {
                    fields.push(("context".into(), Json::Num(c as f64)));
                }
                if !l.features.is_default() {
                    fields.push(("features".into(), l.features.to_json()));
                }
                Json::Obj(fields)
            }
            SimRequest::AreaReport(a) => {
                let mut fields = Vec::new();
                if a.config != ConfigSource::Default {
                    fields.push(("config".into(), a.config.to_json()));
                }
                if !a.features.is_default() {
                    fields.push(("features".into(), a.features.to_json()));
                }
                Json::Obj(fields)
            }
            SimRequest::Version => Json::Obj(Vec::new()),
            SimRequest::Stats => Json::Obj(Vec::new()),
            SimRequest::Trace => Json::Obj(Vec::new()),
        }
    }

    /// Decodes a request body for the given wire tag.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] describing the first shape problem.
    pub fn from_json(tag: &str, body: &Json) -> Result<SimRequest, SimError> {
        match tag {
            "run" => {
                let topology = TopologySource::from_json(
                    body.get("topology")
                        .ok_or_else(|| bad("run: missing required \"topology\""))?,
                )?;
                Ok(SimRequest::Run(RunSpec {
                    config: opt_config(body, "config")?,
                    topology,
                    features: opt_features(body)?,
                }))
            }
            "sweep" => {
                let spec = ConfigSource::from_json(
                    body.get("spec")
                        .ok_or_else(|| bad("sweep: missing required \"spec\""))?,
                    "sweep spec",
                )?;
                if spec == ConfigSource::Default {
                    return Err(bad("sweep spec: \"default\" is not a grid"));
                }
                let topologies = match body.get("topologies") {
                    None => Vec::new(),
                    Some(v) => v
                        .as_array()
                        .ok_or_else(|| bad("sweep: \"topologies\" must be an array"))?
                        .iter()
                        .map(TopologySource::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                };
                let shards = match body.get("shards") {
                    None => 1,
                    Some(v) => v
                        .as_u64()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| bad("sweep: \"shards\" must be a positive integer"))?
                        as usize,
                };
                Ok(SimRequest::Sweep(SweepRequest {
                    spec,
                    base_config: opt_config(body, "base_config")?,
                    topologies,
                    shards,
                }))
            }
            "scaleout" => {
                let topology = TopologySource::from_json(
                    body.get("topology")
                        .ok_or_else(|| bad("scaleout: missing required \"topology\""))?,
                )?;
                let positive_int = |key: &str| -> Result<Option<u64>, SimError> {
                    match body.get(key) {
                        None => Ok(None),
                        Some(v) => v.as_u64().filter(|&n| n >= 1).map(Some).ok_or_else(|| {
                            bad(format!("scaleout: \"{key}\" must be a positive integer"))
                        }),
                    }
                };
                let link_gbps =
                    match body.get("link_gbps") {
                        None => None,
                        Some(v) => Some(v.as_f64().filter(|g| *g > 0.0).ok_or_else(|| {
                            bad("scaleout: \"link_gbps\" must be a positive number")
                        })?),
                    };
                let link_latency = match body.get("link_latency") {
                    None => None,
                    Some(v) => Some(v.as_u64().ok_or_else(|| {
                        bad("scaleout: \"link_latency\" must be a non-negative integer")
                    })?),
                };
                // A present-but-mistyped override must error, never be
                // silently ignored (the run would proceed with the
                // cfg/default value and return plausible wrong results).
                let string = |key: &str| -> Result<Option<String>, SimError> {
                    match body.get(key) {
                        None => Ok(None),
                        Some(v) => v
                            .as_str()
                            .map(|s| Some(s.to_string()))
                            .ok_or_else(|| bad(format!("scaleout: \"{key}\" must be a string"))),
                    }
                };
                Ok(SimRequest::Scaleout(ScaleoutRequest {
                    config: opt_config(body, "config")?,
                    topology,
                    features: opt_features(body)?,
                    chips: positive_int("chips")?.map(|n| n as usize),
                    fabric: string("fabric")?,
                    link_gbps,
                    link_latency,
                    strategy: string("strategy")?,
                    microbatches: positive_int("microbatches")?.map(|n| n as usize),
                }))
            }
            "llm" => {
                // Like scaleout overrides: present-but-mistyped fields
                // must error, never be silently dropped.
                let string = |key: &str| -> Result<Option<String>, SimError> {
                    match body.get(key) {
                        None => Ok(None),
                        Some(v) => v
                            .as_str()
                            .map(|s| Some(s.to_string()))
                            .ok_or_else(|| bad(format!("llm: \"{key}\" must be a string"))),
                    }
                };
                let positive_int = |key: &str| -> Result<Option<usize>, SimError> {
                    match body.get(key) {
                        None => Ok(None),
                        Some(v) => v
                            .as_u64()
                            .filter(|&n| n >= 1)
                            .map(|n| Some(n as usize))
                            .ok_or_else(|| {
                                bad(format!("llm: \"{key}\" must be a positive integer"))
                            }),
                    }
                };
                Ok(SimRequest::Llm(LlmRequest {
                    config: opt_config(body, "config")?,
                    workload: string("workload")?,
                    phase: string("phase")?,
                    seq: positive_int("seq")?,
                    batch: positive_int("batch")?,
                    context: positive_int("context")?,
                    features: opt_features(body)?,
                }))
            }
            "area" => Ok(SimRequest::AreaReport(AreaSpec {
                config: opt_config(body, "config")?,
                features: opt_features(body)?,
            })),
            "version" => Ok(SimRequest::Version),
            "stats" => Ok(SimRequest::Stats),
            "trace" => Ok(SimRequest::Trace),
            other => Err(bad(format!(
                "unknown request '{other}' (supported: run, sweep, scaleout, llm, area, \
                 version, stats, trace)"
            ))),
        }
    }
}

fn opt_config(body: &Json, key: &str) -> Result<ConfigSource, SimError> {
    match body.get(key) {
        None => Ok(ConfigSource::Default),
        Some(v) => ConfigSource::from_json(v, key),
    }
}

fn opt_features(body: &Json) -> Result<Features, SimError> {
    match body.get("features") {
        None => Ok(Features::default()),
        Some(v) => Features::from_json(v),
    }
}

fn bad(msg: impl Into<String>) -> SimError {
    SimError::Config(format!("request: {}", msg.into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: SimRequest) {
        let body = req.to_json();
        let back = SimRequest::from_json(req.tag(), &body).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn run_request_round_trips() {
        round_trip(SimRequest::Run(RunSpec {
            config: ConfigSource::Inline("ArrayHeight : 8\nArrayWidth : 8\n".into()),
            topology: TopologySource::inline("t", "a, 8, 8, 8,\n")
                .with_format(TopologyFormat::Gemm),
            features: Features {
                dram: true,
                energy: true,
                layout: false,
                cores: Some("2x2".into()),
            },
        }));
        round_trip(SimRequest::Run(RunSpec {
            config: ConfigSource::Path("configs/tpu.cfg".into()),
            topology: TopologySource::from_path("topologies/resnet18.csv"),
            features: Features::default(),
        }));
    }

    #[test]
    fn scaleout_request_round_trips() {
        round_trip(SimRequest::Scaleout(ScaleoutRequest {
            config: ConfigSource::Path("configs/example_scaleout.cfg".into()),
            topology: TopologySource::from_path("topologies/resnet18.csv"),
            features: Features::default(),
            chips: Some(64),
            fabric: Some("mesh".into()),
            link_gbps: Some(37.5),
            link_latency: Some(250),
            strategy: Some("tensor".into()),
            microbatches: Some(8),
        }));
        // All overrides optional: the cfg's [scaleout] section rules.
        round_trip(SimRequest::Scaleout(ScaleoutRequest::for_topology(
            TopologySource::inline("t", "a, 8, 8, 8,\n"),
        )));
    }

    #[test]
    fn scaleout_rejects_bad_overrides() {
        for body in [
            r#"{"topology": {"inline": "a, 8, 8, 8,\n"}, "chips": 0}"#,
            r#"{"topology": {"inline": "a, 8, 8, 8,\n"}, "link_gbps": -1}"#,
            r#"{"topology": {"inline": "a, 8, 8, 8,\n"}, "microbatches": 0}"#,
            // Mistyped overrides must error, never be silently dropped.
            r#"{"topology": {"inline": "a, 8, 8, 8,\n"}, "strategy": 5}"#,
            r#"{"topology": {"inline": "a, 8, 8, 8,\n"}, "fabric": ["mesh"]}"#,
        ] {
            let v = Json::parse(body).unwrap();
            assert!(SimRequest::from_json("scaleout", &v).is_err(), "{body}");
        }
        let err = SimRequest::from_json("scaleout", &Json::Obj(vec![])).unwrap_err();
        assert!(err.message().contains("topology"), "{err}");
    }

    #[test]
    fn llm_request_round_trips() {
        round_trip(SimRequest::Llm(LlmRequest {
            config: ConfigSource::Inline("[llm]\nPreset : llama-7b\n".into()),
            workload: Some("llama-7b".into()),
            phase: Some("decode".into()),
            seq: Some(1024),
            batch: Some(4),
            context: Some(2048),
            features: Features {
                dram: true,
                ..Features::default()
            },
        }));
        // Everything optional on the wire: the cfg's [llm] section
        // (or the preset alone) rules.
        round_trip(SimRequest::Llm(LlmRequest::for_workload("mixtral-8x7b")));
    }

    #[test]
    fn llm_rejects_mistyped_overrides() {
        for body in [
            r#"{"workload": 7}"#,
            r#"{"workload": "llama-7b", "phase": 0}"#,
            r#"{"workload": "llama-7b", "seq": 0}"#,
            r#"{"workload": "llama-7b", "batch": -1}"#,
            r#"{"workload": "llama-7b", "context": "long"}"#,
        ] {
            let v = Json::parse(body).unwrap();
            assert!(SimRequest::from_json("llm", &v).is_err(), "{body}");
        }
    }

    #[test]
    fn sweep_and_area_round_trip() {
        round_trip(SimRequest::Sweep(SweepRequest {
            spec: ConfigSource::Inline("array = 8x8\n".into()),
            base_config: ConfigSource::Default,
            topologies: vec![TopologySource::inline("t", "a, 8, 8, 8,\n")],
            shards: 3,
        }));
        round_trip(SimRequest::AreaReport(AreaSpec::default()));
        round_trip(SimRequest::Version);
        round_trip(SimRequest::Stats);
        round_trip(SimRequest::Trace);
    }

    #[test]
    fn missing_topology_is_a_config_error() {
        let err = SimRequest::from_json("run", &Json::Obj(vec![])).unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.message().contains("topology"), "{err}");
    }

    #[test]
    fn topology_requires_exactly_one_source() {
        let both = Json::parse(r#"{"topology": {"path": "a", "inline": "b"}}"#).unwrap();
        assert!(SimRequest::from_json("run", &both).is_err());
        let neither = Json::parse(r#"{"topology": {"name": "x"}}"#).unwrap();
        assert!(SimRequest::from_json("run", &neither).is_err());
        let mixed = Json::parse(r#"{"topology": {"path": "a", "workload": "resnet18"}}"#).unwrap();
        assert!(SimRequest::from_json("run", &mixed).is_err());
    }

    #[test]
    fn workload_topology_round_trips() {
        round_trip(SimRequest::Run(RunSpec {
            config: ConfigSource::Default,
            topology: TopologySource::from_workload("llama-7b:decode"),
            features: Features::default(),
        }));
        round_trip(SimRequest::Scaleout(ScaleoutRequest::for_topology(
            TopologySource::from_workload("resnet18"),
        )));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let err = SimRequest::from_json("frobnicate", &Json::Obj(vec![])).unwrap_err();
        assert!(err.message().contains("unknown request"), "{err}");
    }

    #[test]
    fn sweep_rejects_default_spec_and_zero_shards() {
        let v = Json::parse(r#"{"spec": "default"}"#).unwrap();
        assert!(SimRequest::from_json("sweep", &v).is_err());
        let v = Json::parse(r#"{"spec": {"inline": "array = 8x8\n"}, "shards": 0}"#).unwrap();
        assert!(SimRequest::from_json("sweep", &v).is_err());
    }
}
