//! The JSON-lines wire protocol of `scalesim serve`.
//!
//! One request per line, one response per line, in order. A request
//! envelope is an object with:
//!
//! * `"api"` — required integer; must equal [`crate::API_VERSION`].
//! * `"id"` — optional string, echoed verbatim in the response.
//! * `"deadline_ms"` — optional non-negative integer; the server
//!   abandons the request with a `deadline` error once this much wall
//!   time has elapsed (checked at stage boundaries, not preemptively).
//! * exactly one command key — `"run"`, `"sweep"`, `"scaleout"`,
//!   `"llm"`, `"area"`, `"version"`, `"stats"` or `"trace"` — whose
//!   value is the command body (see [`crate::request`]).
//!
//! A response envelope carries `"api"`, the echoed `"id"` (when the
//! request had one), and either `"ok"` (an object keyed by the command
//! tag) or `"error"` (`kind`/`exit_code`/`message`). Responses are
//! emitted with fixed key order and fixed numeric precision, so serve
//! output is byte-deterministic for a given build.
//!
//! ```
//! use scalesim_api::{wire, SimRequest};
//! let line = r#"{"api": 1, "id": "v1", "version": {}}"#;
//! let (id, req) = wire::decode_request(line);
//! assert_eq!(id.as_deref(), Some("v1"));
//! assert_eq!(req.unwrap(), SimRequest::Version);
//! ```

use crate::error::SimError;
use crate::json::{escape_into, Json};
use crate::request::SimRequest;
use crate::response::SimResponse;
use crate::API_VERSION;

/// The command keys an envelope may carry.
const COMMANDS: [&str; 8] = [
    "run", "sweep", "scaleout", "llm", "area", "version", "stats", "trace",
];

/// The supported command set, rendered for error messages.
fn supported_commands() -> String {
    COMMANDS.join(", ")
}

/// A fully decoded request envelope: the id and deadline recovered
/// (even from envelopes whose command failed to decode, so servers can
/// correlate and bound every reply) plus the decoded request or the
/// failure describing what was wrong.
#[derive(Debug)]
pub struct DecodedRequest {
    /// The `"id"` field, echoed in the response when present.
    pub id: Option<String>,
    /// The `"deadline_ms"` field, when present and valid.
    pub deadline_ms: Option<u64>,
    /// The decoded command, or the first decode failure.
    pub request: Result<SimRequest, SimError>,
}

/// Decodes one request line.
///
/// Returns the request id (when one could be recovered — it is echoed
/// even on malformed requests so clients can correlate failures) and
/// the decoded request or the failure describing what was wrong. All
/// decode failures are [`SimError::Config`]; nothing here panics on any
/// input. Ignores `deadline_ms` — servers use
/// [`decode_request_full`].
pub fn decode_request(line: &str) -> (Option<String>, Result<SimRequest, SimError>) {
    let decoded = decode_request_full(line);
    (decoded.id, decoded.request)
}

/// Decodes one request line including the `deadline_ms` envelope field
/// (the server half; clients without deadlines can keep using
/// [`decode_request`]).
pub fn decode_request_full(line: &str) -> DecodedRequest {
    let value = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return DecodedRequest {
                id: None,
                deadline_ms: None,
                request: Err(SimError::Config(format!("request is not valid JSON: {e}"))),
            }
        }
    };
    let id = value.get("id").and_then(Json::as_str).map(str::to_string);
    let (deadline_ms, deadline_err) = match value.get("deadline_ms") {
        None => (None, None),
        Some(v) => match v.as_u64() {
            Some(ms) => (Some(ms), None),
            None => (
                None,
                Some(SimError::Config(format!(
                    "request: \"deadline_ms\" must be a non-negative integer, got {v}"
                ))),
            ),
        },
    };
    let request = match deadline_err {
        Some(e) => Err(e),
        None => decode_envelope(&value),
    };
    DecodedRequest {
        id,
        deadline_ms,
        request,
    }
}

fn decode_envelope(value: &Json) -> Result<SimRequest, SimError> {
    let Some(fields) = value.as_object() else {
        return Err(SimError::Config("request must be a JSON object".into()));
    };
    match value.get("api") {
        Some(api) => match api.as_u64() {
            Some(v) if v == u64::from(API_VERSION) => {}
            Some(v) => {
                return Err(SimError::Config(format!(
                    "unsupported api version {v} (supported versions: {API_VERSION})"
                )))
            }
            // Present but not a non-negative integer (a string, a
            // fraction…) — say so, rather than claiming it is missing.
            None => {
                return Err(SimError::Config(format!(
                    "request: \"api\" must be the integer {API_VERSION}, got {api}"
                )))
            }
        },
        None => {
            return Err(SimError::Config(format!(
                "request: missing required \"api\": {API_VERSION}"
            )))
        }
    }
    let mut command = None;
    for (key, body) in fields {
        match key.as_str() {
            "api" | "id" | "deadline_ms" => {}
            k if COMMANDS.contains(&k) => {
                if command.is_some() {
                    return Err(SimError::Config(
                        "request: more than one command key".into(),
                    ));
                }
                command = Some((k, body));
            }
            other => {
                return Err(SimError::Config(format!(
                    "request: unknown key \"{other}\" (supported commands: {})",
                    supported_commands()
                )))
            }
        }
    }
    let Some((tag, body)) = command else {
        return Err(SimError::Config(format!(
            "request: missing command key (one of {})",
            supported_commands()
        )));
    };
    SimRequest::from_json(tag, body)
}

/// Encodes one request line (the client half).
pub fn encode_request(id: Option<&str>, request: &SimRequest) -> String {
    encode_request_with_deadline(id, None, request)
}

/// Encodes one request line carrying an optional `deadline_ms` budget.
pub fn encode_request_with_deadline(
    id: Option<&str>,
    deadline_ms: Option<u64>,
    request: &SimRequest,
) -> String {
    let mut fields = vec![("api".to_string(), Json::Num(f64::from(API_VERSION)))];
    if let Some(id) = id {
        fields.push(("id".into(), Json::Str(id.to_string())));
    }
    if let Some(ms) = deadline_ms {
        fields.push(("deadline_ms".into(), Json::Num(ms as f64)));
    }
    fields.push((request.tag().to_string(), request.to_json()));
    Json::Obj(fields).to_string()
}

/// Encodes one response line: `{"api":1[,"id":…],"ok":{…}}` on success,
/// `{"api":1[,"id":…],"error":{…}}` on failure. Single line, fixed key
/// order.
pub fn encode_response(id: Option<&str>, result: &Result<SimResponse, SimError>) -> String {
    let mut out = format!("{{\"api\":{API_VERSION}");
    if let Some(id) = id {
        out.push_str(",\"id\":\"");
        escape_into(id, &mut out);
        out.push('"');
    }
    match result {
        Ok(resp) => {
            out.push_str(",\"ok\":{\"");
            out.push_str(resp.tag());
            out.push_str("\":");
            out.push_str(&resp.to_json_string());
            out.push('}');
        }
        Err(e) => {
            out.push_str(&format!(
                ",\"error\":{{\"kind\":\"{}\",\"exit_code\":{},\"message\":\"",
                e.kind(),
                e.exit_code()
            ));
            escape_into(e.message(), &mut out);
            out.push_str("\"}");
        }
    }
    out.push('}');
    out
}

/// Decodes one response line (the client half).
///
/// Returns the echoed id and either the decoded response or the
/// server-reported (or local decode) failure.
pub fn decode_response(line: &str) -> (Option<String>, Result<SimResponse, SimError>) {
    let value = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                None,
                Err(SimError::Config(format!("response is not valid JSON: {e}"))),
            )
        }
    };
    let id = value.get("id").and_then(Json::as_str).map(str::to_string);
    if let Some(err) = value.get("error") {
        let kind = err.get("kind").and_then(Json::as_str).unwrap_or("internal");
        let message = err
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("missing error message")
            .to_string();
        return (id, Err(SimError::from_kind(kind, message)));
    }
    let result = match value.get("ok").and_then(Json::as_object) {
        Some([(tag, body)]) => SimResponse::from_json(tag, body),
        _ => Err(SimError::Config(
            "response: expected exactly one body under \"ok\"".into(),
        )),
    };
    (id, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ConfigSource, RunSpec, TopologyFormat, TopologySource};
    use crate::response::{SimResponse, VersionBody};

    fn run_request() -> SimRequest {
        SimRequest::Run(RunSpec {
            config: ConfigSource::Default,
            topology: TopologySource::inline("t", "a, 8, 8, 8,\n")
                .with_format(TopologyFormat::Gemm),
            features: Default::default(),
        })
    }

    #[test]
    fn request_round_trips_through_the_wire() {
        let line = encode_request(Some("r-1"), &run_request());
        assert!(!line.contains('\n'));
        let (id, decoded) = decode_request(&line);
        assert_eq!(id.as_deref(), Some("r-1"));
        assert_eq!(decoded.unwrap(), run_request());
    }

    #[test]
    fn missing_or_wrong_api_version_is_rejected() {
        let (_, r) = decode_request(r#"{"version": {}}"#);
        assert!(r.unwrap_err().message().contains("api"), "missing api");
        let (_, r) = decode_request(r#"{"api": 99, "version": {}}"#);
        assert!(r.unwrap_err().message().contains("unsupported api"));
    }

    #[test]
    fn non_integer_api_is_not_reported_as_missing() {
        for line in [
            r#"{"api": "1", "version": {}}"#,
            r#"{"api": 1.5, "version": {}}"#,
            r#"{"api": -1, "version": {}}"#,
            r#"{"api": null, "version": {}}"#,
        ] {
            let msg = decode_request(line).1.unwrap_err().message().to_string();
            assert!(msg.contains("must be the integer"), "{line}: {msg}");
            assert!(!msg.contains("missing"), "{line}: {msg}");
        }
    }

    /// Satellite: the exact wire shape of the two "client from the
    /// future (or the past)" failures is pinned byte for byte — an
    /// unknown command and an unsupported api version must name the
    /// offending value **and** the supported set, and the envelope
    /// around them must not drift.
    #[test]
    fn unknown_command_and_bad_version_wire_shapes_are_pinned() {
        let (id, r) = decode_request(r#"{"api": 1, "id": "f1", "teleport": {}}"#);
        assert_eq!(
            wire_line(id, r),
            r#"{"api":1,"id":"f1","error":{"kind":"config","exit_code":2,"message":"request: unknown key \"teleport\" (supported commands: run, sweep, scaleout, llm, area, version, stats, trace)"}}"#
        );
        let (id, r) = decode_request(r#"{"api": 2, "id": "f2", "version": {}}"#);
        assert_eq!(
            wire_line(id, r),
            r#"{"api":1,"id":"f2","error":{"kind":"config","exit_code":2,"message":"unsupported api version 2 (supported versions: 1)"}}"#
        );
        let (id, r) = decode_request(r#"{"api": 1, "id": "f3"}"#);
        assert_eq!(
            wire_line(id, r),
            r#"{"api":1,"id":"f3","error":{"kind":"config","exit_code":2,"message":"request: missing command key (one of run, sweep, scaleout, llm, area, version, stats, trace)"}}"#
        );
    }

    fn wire_line(id: Option<String>, r: Result<SimRequest, SimError>) -> String {
        encode_response(id.as_deref(), &r.map(|_| unreachable!("decode must fail")))
    }

    #[test]
    fn scaleout_command_is_accepted_on_the_wire() {
        let (_, r) = decode_request(
            r#"{"api": 1, "scaleout": {"topology": {"inline": "a, 8, 8, 8,\n"}, "chips": 4}}"#,
        );
        let SimRequest::Scaleout(s) = r.unwrap() else {
            panic!("expected a scaleout request");
        };
        assert_eq!(s.chips, Some(4));
    }

    #[test]
    fn id_is_recovered_from_malformed_envelopes() {
        let (id, r) = decode_request(r#"{"api": 1, "id": "x7", "frob": {}}"#);
        assert_eq!(id.as_deref(), Some("x7"));
        assert!(r.is_err());
        let (id, r) = decode_request("not json at all");
        assert_eq!(id, None);
        assert!(r.is_err());
    }

    #[test]
    fn two_command_keys_are_rejected() {
        let (_, r) = decode_request(r#"{"api": 1, "version": {}, "area": {}}"#);
        assert!(r.unwrap_err().message().contains("more than one"));
    }

    #[test]
    fn deadline_ms_round_trips_and_rejects_bad_values() {
        let line = encode_request_with_deadline(Some("d1"), Some(250), &SimRequest::Version);
        let decoded = decode_request_full(&line);
        assert_eq!(decoded.id.as_deref(), Some("d1"));
        assert_eq!(decoded.deadline_ms, Some(250));
        assert_eq!(decoded.request.unwrap(), SimRequest::Version);

        // Absent deadline decodes as None; the envelope is unchanged.
        let plain = encode_request(Some("d2"), &SimRequest::Version);
        assert!(!plain.contains("deadline_ms"));
        assert_eq!(decode_request_full(&plain).deadline_ms, None);

        // Mistyped deadlines error (never silently dropped), and the id
        // is still recovered for the error reply.
        for line in [
            r#"{"api": 1, "id": "d3", "deadline_ms": "fast", "version": {}}"#,
            r#"{"api": 1, "id": "d3", "deadline_ms": -5, "version": {}}"#,
            r#"{"api": 1, "id": "d3", "deadline_ms": 1.5, "version": {}}"#,
        ] {
            let decoded = decode_request_full(line);
            assert_eq!(decoded.id.as_deref(), Some("d3"), "{line}");
            let e = decoded.request.unwrap_err();
            assert!(e.message().contains("deadline_ms"), "{line}: {e}");
        }
    }

    #[test]
    fn stats_command_is_accepted_on_the_wire() {
        let (_, r) = decode_request(r#"{"api": 1, "stats": {}}"#);
        assert_eq!(r.unwrap(), SimRequest::Stats);
    }

    #[test]
    fn trace_command_is_accepted_on_the_wire() {
        let (_, r) = decode_request(r#"{"api": 1, "id": "t1", "trace": {}}"#);
        assert_eq!(r.unwrap(), SimRequest::Trace);
    }

    #[test]
    fn ok_response_round_trips() {
        let resp = SimResponse::Version(VersionBody {
            version: "scalesim x".into(),
            api: 1,
        });
        let line = encode_response(Some("v1"), &Ok(resp.clone()));
        let (id, decoded) = decode_response(&line);
        assert_eq!(id.as_deref(), Some("v1"));
        assert_eq!(decoded.unwrap(), resp);
    }

    #[test]
    fn error_response_round_trips_with_exit_code() {
        let err = SimError::Topology("duplicate layer name 'a'".into());
        let line = encode_response(None, &Err(err.clone()));
        assert!(line.contains("\"exit_code\":3"), "{line}");
        let (id, decoded) = decode_response(&line);
        assert_eq!(id, None);
        assert_eq!(decoded.unwrap_err(), err);
    }
}
