//! A minimal, dependency-free JSON value model with a strict parser and
//! a deterministic writer.
//!
//! The container ships without `serde`, so the wire protocol carries its
//! own codec. The model is deliberately small:
//!
//! * Objects preserve **insertion order** (`Vec<(String, Json)>`), so a
//!   value written and re-parsed round-trips byte-identically — the
//!   serve-mode responses are pinned by golden files.
//! * Numbers are stored as `f64`; integers up to 2^53 round-trip
//!   exactly, which covers every count the protocol carries (report
//!   *contents* travel as strings, not numbers).
//!
//! ```
//! use scalesim_api::json::Json;
//! let v = Json::parse(r#"{"a": [1, true, "x\n"]}"#).unwrap();
//! assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
//! assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is insertion order and is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error (a JSON-lines frame is exactly one value).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects
    /// fractional and out-of-range values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Writes compact JSON (no insignificant whitespace), escaping
    /// strings per RFC 8259. Object key order is preserved, so the
    /// output is deterministic for a given value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                let mut buf = String::new();
                escape_into(s, &mut buf);
                f.write_str(&buf)?;
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Appends `s` to `out` with JSON string escaping applied (quotes,
/// backslashes, and all control characters; `\n`/`\r`/`\t` use their
/// short forms). Used by the hand-built response emitters so embedded
/// report CSVs stay single-line.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// [`escape_into`] returning a fresh string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

/// Maximum container nesting the parser accepts. The parser recurses
/// per nesting level, so without a bound a line of a few hundred KB of
/// `[` would overflow the thread stack — an abort no `catch_unwind` can
/// intercept, which serve mode must never expose to a client. 128
/// matches serde_json's default and is far beyond any real request.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character '{}' at byte {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        // RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        // Enforced here rather than delegated to Rust's f64 parser,
        // which is laxer (it accepts "01", "1." and "1.e5").
        let start = self.pos;
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos - from
        };
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        let int_len = digits(self);
        if int_len == 0 {
            return Err(format!("expected a digit at byte {}", self.pos));
        }
        if int_len > 1 && self.bytes[int_start] == b'0' {
            return Err(format!("leading zero in number at byte {int_start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if digits(self) == 0 {
                return Err(format!(
                    "expected a digit after the decimal point at byte {}",
                    self.pos
                ));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if digits(self) == 0 {
                return Err(format!(
                    "expected a digit in the exponent at byte {}",
                    self.pos
                ));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Find the next byte that needs attention; everything up to
            // it is verbatim UTF-8.
            let chunk_start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[chunk_start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {chunk_start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(format!("unpaired surrogate at byte {}", self.pos));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(format!(
                                        "invalid low surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid code point at byte {}", self.pos)
                            })?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(format!("unescaped control character at byte {}", self.pos)),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape '{hex}' at byte {}", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "value nested deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let v = Json::parse(r#"{"b": [1, {"c": null}], "a": "x"}"#).unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ \u{0001} unicode: é λ 🎉";
        let encoded = Json::Str(original.into()).to_string();
        assert_eq!(
            Json::parse(&encoded).unwrap().as_str().unwrap(),
            original,
            "escape/unescape must round-trip"
        );
        assert!(!encoded.contains('\n'), "encoded form is single-line");
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
        // Surrogate pair for 🎉 (U+1F389).
        assert_eq!(Json::parse(r#""🎉""#).unwrap().as_str(), Some("🎉"));
        assert!(Json::parse(r#""\ud83c""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{\"a\": }",
            "\"unterminated",
            "nullx",
            "[1] trailing",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn number_grammar_is_rfc_8259_strict() {
        for bad in [
            "01",
            "-01",
            "007",
            "1.",
            "1.e5",
            ".5",
            "-",
            "1e",
            "1e+",
            "{\"shards\": 007}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
        for (good, want) in [
            ("0", 0.0),
            ("-0", 0.0),
            ("10", 10.0),
            ("0.5", 0.5),
            ("-0.25e-3", -0.25e-3),
            ("2E2", 200.0),
        ] {
            assert_eq!(Json::parse(good).unwrap(), Json::Num(want), "{good}");
        }
    }

    #[test]
    fn nesting_is_bounded_but_width_is_not() {
        // At the limit: fine. One past it: a parse error, not a stack
        // overflow (which would abort the process, uncatchable).
        let deep_ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        for bomb in [
            format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1)),
            "[".repeat(500_000),
            format!("{}1{}", "{\"k\":[".repeat(100_000), "]}".repeat(100_000)),
        ] {
            let err = Json::parse(&bomb).unwrap_err();
            assert!(err.contains("nested deeper"), "{err}");
        }
        // Depth is nesting, not total container count: siblings must
        // not accumulate.
        let wide = format!("[{}]", vec!["[[]]"; 10_000].join(","));
        assert!(Json::parse(&wide).is_ok(), "wide-but-shallow is fine");
    }

    #[test]
    fn writer_round_trips() {
        let text = r#"{"api":1,"id":"r-1","run":{"flags":[true,false,null],"n":3.25}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }
}
