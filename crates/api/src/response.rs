//! The typed response surface: [`SimResponse`] and its per-command
//! bodies.
//!
//! Report **contents** travel as strings (the exact bytes the one-shot
//! CLI writes to `*_REPORT.csv` files), so a response is verifiable
//! byte-for-byte against the golden suite and a remote client can
//! persist reports identical to a local run. Scalar summaries use
//! fixed-precision formatting, making response lines deterministic for
//! a given build.

use crate::error::SimError;
use crate::json::{escape_into, Json};

/// One emitted report: the file name the CLI would write and its exact
/// contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Standard file name (`COMPUTE_REPORT.csv`, `SWEEP_REPORT.json`, …).
    pub name: String,
    /// The full file contents, byte-identical to the CLI's output.
    pub content: String,
}

/// Aggregate metrics of one run (the O(1) reduction every layer streams
/// through).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummaryBody {
    /// Layers simulated.
    pub layers: usize,
    /// End-to-end cycles (DRAM-aware when the DRAM flow ran).
    pub total_cycles: u64,
    /// Stall-free compute cycles.
    pub compute_cycles: u64,
    /// Stall cycles.
    pub stall_cycles: u64,
    /// MACs executed.
    pub macs: u64,
    /// Compute-cycle-weighted mean PE utilization in `[0, 1]`.
    pub utilization: f64,
    /// Total energy in mJ (0.0 when energy estimation is off).
    pub energy_mj: f64,
    /// L2→L1 NoC words (0 for single-core runs).
    pub noc_words: u64,
}

/// Response body of a `run` request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunBody {
    /// Run-level aggregates.
    pub summary: RunSummaryBody,
    /// Every report the configuration produces, in the CLI's emission
    /// order.
    pub reports: Vec<Report>,
}

/// Response body of a `sweep` request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepBody {
    /// Grid points expanded from the spec.
    pub grid_points: usize,
    /// Total `(point, topology)` runs executed.
    pub runs: usize,
    /// Labels of the runtime-vs-energy Pareto frontier, in point order.
    pub pareto_frontier: Vec<String>,
    /// `SWEEP_REPORT.csv` and `SWEEP_REPORT.json`.
    pub reports: Vec<Report>,
}

/// Response body of a `scaleout` request: the multi-chip run's
/// aggregate timeline plus `SCALEOUT_REPORT.csv`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScaleoutBody {
    /// Chips simulated.
    pub chips: u64,
    /// Strategy tag that ran (`dp` / `tp` / `pp`).
    pub strategy: String,
    /// Human-readable fabric description.
    pub fabric: String,
    /// Layers executed.
    pub layers: usize,
    /// End-to-end critical-path cycles.
    pub total_cycles: u64,
    /// Per-chip compute cycles.
    pub compute_cycles: u64,
    /// Collective cycles obligated.
    pub comm_cycles: u64,
    /// Communication hidden under compute.
    pub overlapped_cycles: u64,
    /// Communication on the critical path.
    pub exposed_cycles: u64,
    /// Pipeline fill/drain overhead (0 for data/tensor parallelism).
    pub bubble_cycles: u64,
    /// Compute-cycle-weighted mean PE utilization in `[0, 1]`.
    pub utilization: f64,
    /// `SCALEOUT_REPORT.csv`.
    pub reports: Vec<Report>,
}

/// Response body of an `llm` request: the generated workload's
/// identity plus the same aggregates and reports a `run` produces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LlmBody {
    /// Model name (preset or custom `[llm]` spec name).
    pub workload: String,
    /// Phase simulated (`prefill` / `decode`).
    pub phase: String,
    /// Context length attended over (KV-cache depth for decode).
    pub context: u64,
    /// Closed-form parameter count of the model.
    pub params: u64,
    /// KV-cache footprint in bytes at this context length.
    pub kv_cache_bytes: u64,
    /// Run-level aggregates.
    pub summary: RunSummaryBody,
    /// Every report the configuration produces, in the CLI's emission
    /// order.
    pub reports: Vec<Report>,
}

/// Response body of an `area` request (Accelergy-style silicon area).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AreaBody {
    /// Total die area, mm².
    pub total_mm2: f64,
    /// PE array contribution, mm².
    pub pe_array_mm2: f64,
    /// SRAM contribution, mm².
    pub sram_mm2: f64,
    /// NoC contribution, mm².
    pub noc_mm2: f64,
    /// DRAM controller contribution, mm².
    pub dram_ctrl_mm2: f64,
    /// `AREA_REPORT.csv`.
    pub reports: Vec<Report>,
}

/// Response body of a `version` request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VersionBody {
    /// Human-readable version line (`scalesim 0.3.0 (git …)`).
    pub version: String,
    /// The wire-protocol version the server speaks (see
    /// [`crate::API_VERSION`]).
    pub api: u32,
}

/// Response body of a `stats` request: a snapshot of the serving
/// process's runtime metrics.
///
/// All counters are cumulative since process start except `in_flight`
/// and the cache residency gauges. Latency percentiles come from a
/// power-of-two-bucket histogram with linear interpolation *within*
/// the winning bucket, clamped to the observed maximum — a value inside
/// the bucket, not its upper bound.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsBody {
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses (each one planned a layer).
    pub cache_misses: u64,
    /// Plans currently resident.
    pub cache_plans: u64,
    /// Entries evicted by the cost-aware policy.
    pub cache_evictions: u64,
    /// Estimated bytes currently held by cached plans.
    pub cache_resident_bytes: u64,
    /// Configured byte budget (0 = count-capped only).
    pub cache_budget_bytes: u64,
    /// hits / (hits + misses), 0.0 when no lookups happened.
    pub cache_hit_rate: f64,
    /// Requests received (queued + inline; includes shed ones).
    pub requests_total: u64,
    /// Requests fully handled (ok or typed error).
    pub completed: u64,
    /// Requests shed with `busy` (queue full or session cap).
    pub shed: u64,
    /// Requests that died with `deadline`.
    pub deadline_expired: u64,
    /// Requests currently executing or queued.
    pub in_flight: u64,
    /// Handle latencies recorded.
    pub latency_count: u64,
    /// Median handle latency, µs (bucket-interpolated).
    pub latency_p50_us: u64,
    /// 99th-percentile handle latency, µs (bucket-interpolated).
    pub latency_p99_us: u64,
    /// Maximum handle latency observed, µs.
    pub latency_max_us: u64,
    /// Scheduler worker threads in the shared pool.
    pub sched_workers: u64,
    /// Successful work steals between scheduler workers.
    pub sched_steals: u64,
    /// Detached tasks submitted to the scheduler.
    pub sched_spawns: u64,
    /// Times a parked scheduler worker was woken.
    pub sched_park_wakeups: u64,
    /// Trace events recorded per span category, in
    /// `sched, pipeline, cache, dram, collective, serve, sweep` order
    /// (all zero unless tracing was enabled at some point).
    pub span_totals: [u64; 7],
}

/// The span-category names `StatsBody::span_totals` is indexed by, in
/// wire order (mirrors `scalesim-obs`'s `Category::ALL`).
pub const SPAN_CATEGORIES: [&str; 7] = [
    "sched",
    "pipeline",
    "cache",
    "dram",
    "collective",
    "serve",
    "sweep",
];

/// Response body of a `trace` request: the process's recorded span
/// rings exported as Chrome trace-event JSON (Perfetto-loadable),
/// carried as a string like report contents are.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceBody {
    /// Whether span recording is currently on.
    pub enabled: bool,
    /// Total events recorded so far (monotonic; overwritten ring
    /// entries stay counted).
    pub events: u64,
    /// The Chrome trace JSON (`{"displayTimeUnit":…,"traceEvents":[…]}`).
    pub trace: String,
}

/// A successful response to a [`crate::SimRequest`]; failures travel as
/// [`SimError`] (see [`crate::wire::encode_response`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SimResponse {
    /// Result of a `run` request.
    Run(RunBody),
    /// Result of a `sweep` request.
    Sweep(SweepBody),
    /// Result of a `scaleout` request.
    Scaleout(ScaleoutBody),
    /// Result of an `llm` request.
    Llm(LlmBody),
    /// Result of an `area` request.
    Area(AreaBody),
    /// Result of a `version` request.
    Version(VersionBody),
    /// Result of a `stats` request.
    Stats(StatsBody),
    /// Result of a `trace` request.
    Trace(TraceBody),
}

fn reports_json(out: &mut String, reports: &[Report]) {
    out.push_str("\"reports\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_into(&r.name, out);
        out.push_str("\",\"content\":\"");
        escape_into(&r.content, out);
        out.push_str("\"}");
    }
    out.push(']');
}

impl SimResponse {
    /// The wire tag the body is keyed by (`run`/`sweep`/`area`/`version`).
    pub fn tag(&self) -> &'static str {
        match self {
            SimResponse::Run(_) => "run",
            SimResponse::Sweep(_) => "sweep",
            SimResponse::Scaleout(_) => "scaleout",
            SimResponse::Llm(_) => "llm",
            SimResponse::Area(_) => "area",
            SimResponse::Version(_) => "version",
            SimResponse::Stats(_) => "stats",
            SimResponse::Trace(_) => "trace",
        }
    }

    /// Serializes the body as a single-line JSON object with fixed key
    /// order and fixed numeric precision — deterministic for a given
    /// build, so serve-mode output can be pinned by golden files.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        match self {
            SimResponse::Run(r) => {
                let s = &r.summary;
                out.push_str(&format!(
                    "{{\"summary\":{{\"layers\":{},\"total_cycles\":{},\
                     \"compute_cycles\":{},\"stall_cycles\":{},\"macs\":{},\
                     \"utilization\":{:.4},\"energy_mj\":{:.6},\"noc_words\":{}}},",
                    s.layers,
                    s.total_cycles,
                    s.compute_cycles,
                    s.stall_cycles,
                    s.macs,
                    s.utilization,
                    s.energy_mj,
                    s.noc_words,
                ));
                reports_json(&mut out, &r.reports);
                out.push('}');
            }
            SimResponse::Sweep(s) => {
                out.push_str(&format!(
                    "{{\"grid_points\":{},\"runs\":{},\"pareto_frontier\":[",
                    s.grid_points, s.runs
                ));
                for (i, label) in s.pareto_frontier.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(label, &mut out);
                    out.push('"');
                }
                out.push_str("],");
                reports_json(&mut out, &s.reports);
                out.push('}');
            }
            SimResponse::Scaleout(s) => {
                out.push_str(&format!(
                    "{{\"summary\":{{\"chips\":{},\"strategy\":\"",
                    s.chips
                ));
                escape_into(&s.strategy, &mut out);
                out.push_str("\",\"fabric\":\"");
                escape_into(&s.fabric, &mut out);
                out.push_str(&format!(
                    "\",\"layers\":{},\"total_cycles\":{},\"compute_cycles\":{},\
                     \"comm_cycles\":{},\"overlapped_cycles\":{},\"exposed_cycles\":{},\
                     \"bubble_cycles\":{},\"utilization\":{:.4}}},",
                    s.layers,
                    s.total_cycles,
                    s.compute_cycles,
                    s.comm_cycles,
                    s.overlapped_cycles,
                    s.exposed_cycles,
                    s.bubble_cycles,
                    s.utilization,
                ));
                reports_json(&mut out, &s.reports);
                out.push('}');
            }
            SimResponse::Llm(l) => {
                out.push_str("{\"workload\":\"");
                escape_into(&l.workload, &mut out);
                out.push_str("\",\"phase\":\"");
                escape_into(&l.phase, &mut out);
                let s = &l.summary;
                out.push_str(&format!(
                    "\",\"context\":{},\"params\":{},\"kv_cache_bytes\":{},\
                     \"summary\":{{\"layers\":{},\"total_cycles\":{},\
                     \"compute_cycles\":{},\"stall_cycles\":{},\"macs\":{},\
                     \"utilization\":{:.4},\"energy_mj\":{:.6},\"noc_words\":{}}},",
                    l.context,
                    l.params,
                    l.kv_cache_bytes,
                    s.layers,
                    s.total_cycles,
                    s.compute_cycles,
                    s.stall_cycles,
                    s.macs,
                    s.utilization,
                    s.energy_mj,
                    s.noc_words,
                ));
                reports_json(&mut out, &l.reports);
                out.push('}');
            }
            SimResponse::Area(a) => {
                out.push_str(&format!(
                    "{{\"total_mm2\":{:.4},\"pe_array_mm2\":{:.4},\"sram_mm2\":{:.4},\
                     \"noc_mm2\":{:.4},\"dram_ctrl_mm2\":{:.4},",
                    a.total_mm2, a.pe_array_mm2, a.sram_mm2, a.noc_mm2, a.dram_ctrl_mm2
                ));
                reports_json(&mut out, &a.reports);
                out.push('}');
            }
            SimResponse::Version(v) => {
                out.push_str("{\"version\":\"");
                escape_into(&v.version, &mut out);
                out.push_str(&format!("\",\"api\":{}}}", v.api));
            }
            SimResponse::Stats(s) => {
                out.push_str(&format!(
                    "{{\"cache\":{{\"hits\":{},\"misses\":{},\"plans\":{},\
                     \"evictions\":{},\"resident_bytes\":{},\"budget_bytes\":{},\
                     \"hit_rate\":{:.4}}},\
                     \"serve\":{{\"requests_total\":{},\"completed\":{},\"shed\":{},\
                     \"deadline_expired\":{},\"in_flight\":{}}},\
                     \"latency_us\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}},",
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_plans,
                    s.cache_evictions,
                    s.cache_resident_bytes,
                    s.cache_budget_bytes,
                    s.cache_hit_rate,
                    s.requests_total,
                    s.completed,
                    s.shed,
                    s.deadline_expired,
                    s.in_flight,
                    s.latency_count,
                    s.latency_p50_us,
                    s.latency_p99_us,
                    s.latency_max_us,
                ));
                out.push_str(&format!(
                    "\"sched\":{{\"workers\":{},\"steals\":{},\"spawns\":{},\
                     \"park_wakeups\":{}}},\"spans\":{{",
                    s.sched_workers, s.sched_steals, s.sched_spawns, s.sched_park_wakeups,
                ));
                for (i, (name, total)) in SPAN_CATEGORIES.iter().zip(s.span_totals).enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{name}\":{total}"));
                }
                out.push_str("}}");
            }
            SimResponse::Trace(t) => {
                out.push_str(&format!(
                    "{{\"enabled\":{},\"events\":{},\"trace\":\"",
                    t.enabled, t.events
                ));
                escape_into(&t.trace, &mut out);
                out.push_str("\"}");
            }
        }
        out
    }

    /// Decodes a response body for the given wire tag (the client half
    /// of the codec; servers emit via
    /// [`to_json_string`](Self::to_json_string)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] describing the first shape problem.
    pub fn from_json(tag: &str, body: &Json) -> Result<SimResponse, SimError> {
        match tag {
            "run" => {
                let s = body
                    .get("summary")
                    .ok_or_else(|| bad("run response: missing \"summary\""))?;
                Ok(SimResponse::Run(RunBody {
                    summary: RunSummaryBody {
                        layers: u(s, "layers")? as usize,
                        total_cycles: u(s, "total_cycles")?,
                        compute_cycles: u(s, "compute_cycles")?,
                        stall_cycles: u(s, "stall_cycles")?,
                        macs: u(s, "macs")?,
                        utilization: f(s, "utilization")?,
                        energy_mj: f(s, "energy_mj")?,
                        noc_words: u(s, "noc_words")?,
                    },
                    reports: reports(body)?,
                }))
            }
            "sweep" => Ok(SimResponse::Sweep(SweepBody {
                grid_points: u(body, "grid_points")? as usize,
                runs: u(body, "runs")? as usize,
                pareto_frontier: body
                    .get("pareto_frontier")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("sweep response: missing \"pareto_frontier\""))?
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| bad("pareto labels must be strings"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                reports: reports(body)?,
            })),
            "scaleout" => {
                let s = body
                    .get("summary")
                    .ok_or_else(|| bad("scaleout response: missing \"summary\""))?;
                let string = |key: &str| -> Result<String, SimError> {
                    s.get(key)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| bad(format!("missing or non-string \"{key}\"")))
                };
                Ok(SimResponse::Scaleout(ScaleoutBody {
                    chips: u(s, "chips")?,
                    strategy: string("strategy")?,
                    fabric: string("fabric")?,
                    layers: u(s, "layers")? as usize,
                    total_cycles: u(s, "total_cycles")?,
                    compute_cycles: u(s, "compute_cycles")?,
                    comm_cycles: u(s, "comm_cycles")?,
                    overlapped_cycles: u(s, "overlapped_cycles")?,
                    exposed_cycles: u(s, "exposed_cycles")?,
                    bubble_cycles: u(s, "bubble_cycles")?,
                    utilization: f(s, "utilization")?,
                    reports: reports(body)?,
                }))
            }
            "llm" => {
                let s = body
                    .get("summary")
                    .ok_or_else(|| bad("llm response: missing \"summary\""))?;
                let string = |key: &str| -> Result<String, SimError> {
                    body.get(key)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| bad(format!("missing or non-string \"{key}\"")))
                };
                Ok(SimResponse::Llm(LlmBody {
                    workload: string("workload")?,
                    phase: string("phase")?,
                    context: u(body, "context")?,
                    params: u(body, "params")?,
                    kv_cache_bytes: u(body, "kv_cache_bytes")?,
                    summary: RunSummaryBody {
                        layers: u(s, "layers")? as usize,
                        total_cycles: u(s, "total_cycles")?,
                        compute_cycles: u(s, "compute_cycles")?,
                        stall_cycles: u(s, "stall_cycles")?,
                        macs: u(s, "macs")?,
                        utilization: f(s, "utilization")?,
                        energy_mj: f(s, "energy_mj")?,
                        noc_words: u(s, "noc_words")?,
                    },
                    reports: reports(body)?,
                }))
            }
            "area" => Ok(SimResponse::Area(AreaBody {
                total_mm2: f(body, "total_mm2")?,
                pe_array_mm2: f(body, "pe_array_mm2")?,
                sram_mm2: f(body, "sram_mm2")?,
                noc_mm2: f(body, "noc_mm2")?,
                dram_ctrl_mm2: f(body, "dram_ctrl_mm2")?,
                reports: reports(body)?,
            })),
            "version" => Ok(SimResponse::Version(VersionBody {
                version: body
                    .get("version")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("version response: missing \"version\""))?
                    .to_string(),
                api: u(body, "api")? as u32,
            })),
            "stats" => {
                let cache = body
                    .get("cache")
                    .ok_or_else(|| bad("stats response: missing \"cache\""))?;
                let serve = body
                    .get("serve")
                    .ok_or_else(|| bad("stats response: missing \"serve\""))?;
                let latency = body
                    .get("latency_us")
                    .ok_or_else(|| bad("stats response: missing \"latency_us\""))?;
                let sched = body
                    .get("sched")
                    .ok_or_else(|| bad("stats response: missing \"sched\""))?;
                let spans = body
                    .get("spans")
                    .ok_or_else(|| bad("stats response: missing \"spans\""))?;
                let mut span_totals = [0u64; 7];
                for (slot, name) in span_totals.iter_mut().zip(SPAN_CATEGORIES) {
                    *slot = u(spans, name)?;
                }
                Ok(SimResponse::Stats(StatsBody {
                    cache_hits: u(cache, "hits")?,
                    cache_misses: u(cache, "misses")?,
                    cache_plans: u(cache, "plans")?,
                    cache_evictions: u(cache, "evictions")?,
                    cache_resident_bytes: u(cache, "resident_bytes")?,
                    cache_budget_bytes: u(cache, "budget_bytes")?,
                    cache_hit_rate: f(cache, "hit_rate")?,
                    requests_total: u(serve, "requests_total")?,
                    completed: u(serve, "completed")?,
                    shed: u(serve, "shed")?,
                    deadline_expired: u(serve, "deadline_expired")?,
                    in_flight: u(serve, "in_flight")?,
                    latency_count: u(latency, "count")?,
                    latency_p50_us: u(latency, "p50")?,
                    latency_p99_us: u(latency, "p99")?,
                    latency_max_us: u(latency, "max")?,
                    sched_workers: u(sched, "workers")?,
                    sched_steals: u(sched, "steals")?,
                    sched_spawns: u(sched, "spawns")?,
                    sched_park_wakeups: u(sched, "park_wakeups")?,
                    span_totals,
                }))
            }
            "trace" => Ok(SimResponse::Trace(TraceBody {
                enabled: body
                    .get("enabled")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("trace response: missing \"enabled\""))?,
                events: u(body, "events")?,
                trace: body
                    .get("trace")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("trace response: missing \"trace\""))?
                    .to_string(),
            })),
            other => Err(bad(format!("unknown response '{other}'"))),
        }
    }
}

fn u(v: &Json, key: &str) -> Result<u64, SimError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("missing or non-integer \"{key}\"")))
}

fn f(v: &Json, key: &str) -> Result<f64, SimError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("missing or non-numeric \"{key}\"")))
}

fn reports(body: &Json) -> Result<Vec<Report>, SimError> {
    body.get("reports")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("missing \"reports\" array"))?
        .iter()
        .map(|r| {
            Ok(Report {
                name: r
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("report missing \"name\""))?
                    .to_string(),
                content: r
                    .get("content")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("report missing \"content\""))?
                    .to_string(),
            })
        })
        .collect()
}

fn bad(msg: impl Into<String>) -> SimError {
    SimError::Config(format!("response: {}", msg.into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(resp: SimResponse) {
        let line = resp.to_json_string();
        assert!(!line.contains('\n'), "bodies must be single-line: {line}");
        let parsed = Json::parse(&line).expect("body is valid JSON");
        let back = SimResponse::from_json(resp.tag(), &parsed).unwrap();
        // Fixed-precision floats survive one round trip exactly because
        // the emitter formats them; re-encode to compare canonically.
        assert_eq!(back.to_json_string(), line);
    }

    #[test]
    fn run_response_round_trips() {
        round_trip(SimResponse::Run(RunBody {
            summary: RunSummaryBody {
                layers: 3,
                total_cycles: 123_456_789_012,
                compute_cycles: 120_000,
                stall_cycles: 3456,
                macs: 1_000_000,
                utilization: 0.8125,
                energy_mj: 1.25,
                noc_words: 0,
            },
            reports: vec![Report {
                name: "COMPUTE_REPORT.csv".into(),
                content: "LayerName, X\nl0, 1\n".into(),
            }],
        }));
    }

    #[test]
    fn scaleout_response_round_trips() {
        round_trip(SimResponse::Scaleout(ScaleoutBody {
            chips: 8,
            strategy: "dp".into(),
            fabric: "ring x8 (100 GB/s, 500 cyc/hop)".into(),
            layers: 21,
            total_cycles: 1_234_567,
            compute_cycles: 1_000_000,
            comm_cycles: 400_000,
            overlapped_cycles: 165_433,
            exposed_cycles: 234_567,
            bubble_cycles: 0,
            utilization: 0.7321,
            reports: vec![Report {
                name: "SCALEOUT_REPORT.csv".into(),
                content: "LayerName, X\nl0, 1\n".into(),
            }],
        }));
    }

    #[test]
    fn llm_response_round_trips() {
        round_trip(SimResponse::Llm(LlmBody {
            workload: "llama-7b".into(),
            phase: "decode".into(),
            context: 2048,
            params: 6_738_149_376,
            kv_cache_bytes: 1_073_741_824,
            summary: RunSummaryBody {
                layers: 225,
                total_cycles: 9_876_543,
                compute_cycles: 9_000_000,
                stall_cycles: 876_543,
                macs: 13_000_000_000,
                utilization: 0.0312,
                energy_mj: 0.0,
                noc_words: 0,
            },
            reports: vec![Report {
                name: "COMPUTE_REPORT.csv".into(),
                content: "LayerName, X\nblk0_qkv, 1\n".into(),
            }],
        }));
    }

    #[test]
    fn sweep_area_version_round_trip() {
        round_trip(SimResponse::Sweep(SweepBody {
            grid_points: 4,
            runs: 8,
            pareto_frontier: vec!["8x8-bw4".into(), "16x16-bw10".into()],
            reports: vec![Report {
                name: "SWEEP_REPORT.csv".into(),
                content: "Run, Point\n0, 0\n".into(),
            }],
        }));
        round_trip(SimResponse::Area(AreaBody {
            total_mm2: 12.3456,
            pe_array_mm2: 4.5,
            sram_mm2: 6.0,
            noc_mm2: 1.0,
            dram_ctrl_mm2: 0.8456,
            reports: vec![],
        }));
        round_trip(SimResponse::Version(VersionBody {
            version: "scalesim 0.3.0 (git abc)".into(),
            api: 1,
        }));
        round_trip(SimResponse::Stats(StatsBody {
            cache_hits: 10,
            cache_misses: 4,
            cache_plans: 4,
            cache_evictions: 1,
            cache_resident_bytes: 123_456,
            cache_budget_bytes: 1 << 20,
            cache_hit_rate: 0.7143,
            requests_total: 20,
            completed: 17,
            shed: 2,
            deadline_expired: 1,
            in_flight: 0,
            latency_count: 17,
            latency_p50_us: 1024,
            latency_p99_us: 16384,
            latency_max_us: 15000,
            sched_workers: 8,
            sched_steals: 42,
            sched_spawns: 19,
            sched_park_wakeups: 131,
            span_totals: [1, 2, 3, 4, 5, 6, 7],
        }));
    }

    #[test]
    fn trace_response_round_trips_with_embedded_json() {
        round_trip(SimResponse::Trace(TraceBody {
            enabled: true,
            events: 12,
            trace: "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}".into(),
        }));
        round_trip(SimResponse::Trace(TraceBody::default()));
    }

    #[test]
    fn report_contents_are_exact() {
        let tricky = "a,b\n\"quoted\",\t tab\r\n";
        let resp = SimResponse::Run(RunBody {
            summary: RunSummaryBody::default(),
            reports: vec![Report {
                name: "X.csv".into(),
                content: tricky.into(),
            }],
        });
        let parsed = Json::parse(&resp.to_json_string()).unwrap();
        let back = SimResponse::from_json("run", &parsed).unwrap();
        let SimResponse::Run(body) = back else {
            panic!("expected run");
        };
        assert_eq!(body.reports[0].content, tricky);
    }
}
