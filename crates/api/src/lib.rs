//! # scalesim-api
//!
//! The **stable, versioned, typed API** of the SCALE-Sim v3 simulator:
//! every scenario the simulator supports — one-shot runs, design-space
//! sweeps, multi-chip scale-out runs, area reports, version probes —
//! is expressed as a
//! [`SimRequest`] and answered with a [`SimResponse`] or a categorized,
//! non-panicking [`SimError`].
//!
//! This crate is deliberately *thin*: plain data types plus their JSON
//! codec ([`json`]) and the JSON-lines wire protocol ([`wire`]) used by
//! `scalesim serve`. Execution lives in the `scalesim` crate's
//! `SimService`, which the CLI binary and the serve mode are both thin
//! clients of. Downstream tools that only *build requests and read
//! responses* (remote clients, schedulers, test harnesses) can depend
//! on this crate alone.
//!
//! ## Versioning policy
//!
//! * [`API_VERSION`] is the wire-protocol major version. Every request
//!   names it; a server rejects versions it does not speak.
//! * Within one `API_VERSION`, changes are **additive only**: new
//!   optional request fields, new response fields, new request kinds.
//!   Removing or renaming a field, changing a type, or changing the
//!   meaning of an exit code bumps `API_VERSION`.
//! * The [`SimError`] categories and their exit codes (config=2,
//!   topology=3, io=4, internal=70, busy=75, deadline=124) are frozen
//!   for all versions.
//!
//! The full JSON schema with worked examples is `docs/API.md`.
//!
//! ## Example
//!
//! ```
//! use scalesim_api::{wire, ConfigSource, Features, RunSpec, SimRequest, TopologySource};
//!
//! let request = SimRequest::Run(RunSpec {
//!     config: ConfigSource::Default,
//!     topology: TopologySource::inline("demo", "l0, 32, 32, 32,\n"),
//!     features: Features { energy: true, ..Default::default() },
//! });
//! let line = wire::encode_request(Some("r-1"), &request);
//! let (id, decoded) = wire::decode_request(&line);
//! assert_eq!(id.as_deref(), Some("r-1"));
//! assert_eq!(decoded.unwrap(), request);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod json;
pub mod request;
pub mod response;
pub mod wire;

/// The wire-protocol major version this crate implements.
pub const API_VERSION: u32 = 1;

pub use error::SimError;
pub use request::{
    AreaSpec, ConfigSource, Features, LlmRequest, RunSpec, ScaleoutRequest, SimRequest,
    SweepRequest, TopologyFormat, TopologySource,
};
pub use response::{
    AreaBody, LlmBody, Report, RunBody, RunSummaryBody, ScaleoutBody, SimResponse, StatsBody,
    SweepBody, TraceBody, VersionBody, SPAN_CATEGORIES,
};
