//! Bank-conflict evaluation (paper §VI-B).
//!
//! For every compute cycle, the set of elements the array requests maps to
//! a set of `(line, bank)` pairs. Each bank can deliver `ports` distinct
//! lines per cycle, so the cycle's cost under the layout model is
//! `max_i ⌈lines_i / ports⌉`. The idealized SCALE-Sim v2 model charges
//! `⌈elements / total_bandwidth⌉` instead; the *relative slowdown* between
//! the two is what Figs. 12 and 13 plot (negative values mean the banked
//! memory outperforms the flat-bandwidth abstraction).

use crate::spec::{LayoutSpec, TensorDims};

/// The multi-bank on-chip memory: bank count, ports per bank and per-bank
/// line width (elements of one line stored in one bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankModel {
    num_banks: usize,
    ports_per_bank: usize,
    bandwidth_per_bank: usize,
}

impl BankModel {
    /// Creates a bank model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(num_banks: usize, ports_per_bank: usize, bandwidth_per_bank: usize) -> Self {
        assert!(
            num_banks > 0 && ports_per_bank > 0 && bandwidth_per_bank > 0,
            "bank model parameters must be non-zero"
        );
        Self {
            num_banks,
            ports_per_bank,
            bandwidth_per_bank,
        }
    }

    /// Builds the model from a total on-chip bandwidth (elements/cycle)
    /// split evenly across `num_banks` banks, as §VI-A describes.
    pub fn from_total_bandwidth(total_bandwidth: usize, num_banks: usize, ports: usize) -> Self {
        Self::new(num_banks, ports, (total_bandwidth / num_banks).max(1))
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }

    /// Ports per bank.
    pub fn ports_per_bank(&self) -> usize {
        self.ports_per_bank
    }

    /// Elements of one line held by one bank.
    pub fn bandwidth_per_bank(&self) -> usize {
        self.bandwidth_per_bank
    }

    /// Total on-chip bandwidth (elements per cycle).
    pub fn total_bandwidth(&self) -> usize {
        self.num_banks * self.bandwidth_per_bank
    }

    /// Cycles required to serve one cycle's element set under the banked
    /// layout model: `max_i ⌈lines_i / ports⌉` (≥ 1 for a non-empty set).
    pub fn cycle_slowdown(
        &self,
        layout: &LayoutSpec,
        dims: TensorDims,
        elements: impl IntoIterator<Item = (usize, usize, usize)>,
    ) -> u64 {
        let mut scratch = Vec::new();
        self.cycle_slowdown_with(&mut scratch, layout, dims, elements)
    }

    /// [`cycle_slowdown`](Self::cycle_slowdown) with a caller-provided
    /// scratch buffer — the allocation-free form used on the hot path
    /// (one call per simulated cycle).
    pub fn cycle_slowdown_with(
        &self,
        scratch: &mut Vec<u64>,
        layout: &LayoutSpec,
        dims: TensorDims,
        elements: impl IntoIterator<Item = (usize, usize, usize)>,
    ) -> u64 {
        scratch.clear();
        for (c, h, w) in elements {
            let p = layout.place_banked(dims, c, h, w, self.bandwidth_per_bank, self.num_banks);
            scratch.push(((p.bank as u64) << 40) | p.line as u64);
        }
        if scratch.is_empty() {
            return 0;
        }
        scratch.sort_unstable();
        scratch.dedup();
        // Count the longest same-bank run (scratch is bank-major sorted).
        let mut worst: u64 = 0;
        let mut run: u64 = 0;
        let mut current_bank = u64::MAX;
        for &key in scratch.iter() {
            let bank = key >> 40;
            if bank == current_bank {
                run += 1;
            } else {
                worst = worst.max(run);
                current_bank = bank;
                run = 1;
            }
        }
        worst = worst.max(run);
        worst.div_ceil(self.ports_per_bank as u64).max(1)
    }

    /// The flat-bandwidth cost of the same element set.
    pub fn bandwidth_model_cycles(&self, num_elements: usize) -> u64 {
        (num_elements as u64)
            .div_ceil(self.total_bandwidth() as u64)
            .max(if num_elements > 0 { 1 } else { 0 })
    }
}

/// Accumulates layout-model vs bandwidth-model cycles over a stream.
#[derive(Debug, Clone)]
pub struct StreamEvaluator {
    model: BankModel,
    layout: LayoutSpec,
    dims: TensorDims,
    layout_cycles: u64,
    bandwidth_cycles: u64,
    compute_cycles: u64,
    peak_cycle_cost: u64,
    /// Scratch buffer reused across cycles.
    scratch: Vec<(usize, usize, usize)>,
}

impl StreamEvaluator {
    /// Creates an evaluator for one tensor under one layout.
    pub fn new(model: BankModel, layout: LayoutSpec, dims: TensorDims) -> Self {
        Self {
            model,
            layout,
            dims,
            layout_cycles: 0,
            bandwidth_cycles: 0,
            compute_cycles: 0,
            peak_cycle_cost: 0,
            scratch: Vec::new(),
        }
    }

    /// Observes one compute cycle's requested elements.
    pub fn observe<I: IntoIterator<Item = (usize, usize, usize)>>(&mut self, elements: I) {
        self.scratch.clear();
        self.scratch.extend(elements);
        self.compute_cycles += 1;
        let lc = self
            .model
            .cycle_slowdown(&self.layout, self.dims, self.scratch.iter().copied());
        let bc = self.model.bandwidth_model_cycles(self.scratch.len());
        // Even an idle cycle advances time by one in both models.
        self.layout_cycles += lc.max(1);
        self.bandwidth_cycles += bc.max(1);
        self.peak_cycle_cost = self.peak_cycle_cost.max(lc);
    }

    /// Final report.
    pub fn report(&self) -> SlowdownReport {
        SlowdownReport {
            compute_cycles: self.compute_cycles,
            layout_cycles: self.layout_cycles,
            bandwidth_cycles: self.bandwidth_cycles,
            peak_cycle_cost: self.peak_cycle_cost,
        }
    }
}

/// Comparison of the banked layout model against the flat-bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowdownReport {
    /// Demand-stream length in compute cycles.
    pub compute_cycles: u64,
    /// Total cycles under the banked layout model.
    pub layout_cycles: u64,
    /// Total cycles under the flat-bandwidth model.
    pub bandwidth_cycles: u64,
    /// Worst single-cycle cost under the layout model.
    pub peak_cycle_cost: u64,
}

impl SlowdownReport {
    /// Relative slowdown vs the bandwidth model (Figs. 12–13's y-axis):
    /// `layout/bandwidth − 1`; negative when banking wins.
    pub fn relative_slowdown(&self) -> f64 {
        if self.bandwidth_cycles == 0 {
            0.0
        } else {
            self.layout_cycles as f64 / self.bandwidth_cycles as f64 - 1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_conflict_when_line_shared() {
        // 16 channels of one pixel share a single line in fig11.
        let model = BankModel::new(16, 1, 8);
        let dims = TensorDims::new(64, 8, 8);
        let l = LayoutSpec::fig11();
        let elems: Vec<_> = (0..16).map(|c| (c, 0, 0)).collect();
        assert_eq!(model.cycle_slowdown(&l, dims, elems), 1);
    }

    #[test]
    fn conflict_when_same_bank_many_lines() {
        // Channel-major layout, 4 banks × 4 elems: elements (0, h, 0) for
        // 8 different h values map to 8 different lines, all in bank 0.
        let model = BankModel::new(4, 1, 4);
        let dims = TensorDims::new(16, 8, 8);
        let l = LayoutSpec::channel_major(16);
        let elems: Vec<_> = (0..8).map(|h| (0, h, 0)).collect();
        assert_eq!(model.cycle_slowdown(&l, dims, elems), 8);
    }

    #[test]
    fn more_ports_reduce_slowdown() {
        let dims = TensorDims::new(16, 8, 8);
        let l = LayoutSpec::channel_major(16);
        let elems: Vec<_> = (0..8).map(|h| (0, h, 0)).collect();
        let one = BankModel::new(4, 1, 4).cycle_slowdown(&l, dims, elems.clone());
        let two = BankModel::new(4, 2, 4).cycle_slowdown(&l, dims, elems);
        assert_eq!(one, 8);
        assert_eq!(two, 4);
    }

    #[test]
    fn banked_model_can_beat_bandwidth_model() {
        // 16 banks × 1 elem/bank: total bandwidth 16 elems/cycle. A cycle
        // requesting 32 elements spread over 32 lines in 16 banks costs 2
        // under both. But requesting 16 elements in 16 distinct banks costs
        // 1 under layout while the bandwidth model also says 1 — instead,
        // use a *narrow* total bandwidth: 4 banks × 1 elem = 4/cycle flat,
        // but 4 requests land in 4 different banks → 1 cycle layout vs
        // 1 cycle bw. To show negative slowdown we need bw < banks·ports:
        let model = BankModel::new(8, 1, 1); // total bandwidth 8
        let dims = TensorDims::new(1, 64, 8);
        let l = LayoutSpec::row_major(8); // one 8-wide row per line
        let mut eval = StreamEvaluator::new(model, l, dims);
        // Each cycle asks for 16 elements: two full lines → 2 lines spread
        // across all 8 banks → layout: each bank has 2 lines → 2 cycles;
        // bandwidth: 16/8 = 2 cycles. Equal. Now 8 elements from 8
        // different rows, all column 0 → all in bank 0: layout 8, bw 1.
        for h in 0..4 {
            eval.observe((0..8).map(move |w| (0usize, h, w)));
        }
        let equal = eval.report();
        assert_eq!(equal.layout_cycles, equal.bandwidth_cycles);
        let mut bad = StreamEvaluator::new(model, l, dims);
        for _ in 0..4 {
            bad.observe((0..8).map(|h| (0usize, h, 0usize)));
        }
        let worse = bad.report();
        assert!(worse.relative_slowdown() > 0.0);
    }

    #[test]
    fn relative_slowdown_negative_with_port_advantage() {
        // 2 banks × 2 ports × 1 elem/bank line: flat bandwidth is 2/cycle,
        // but the banked memory can serve 4 lines per cycle (2 per bank).
        let model = BankModel::new(2, 2, 1);
        let dims = TensorDims::matrix(16, 2);
        let l = LayoutSpec::row_major(2);
        let mut eval = StreamEvaluator::new(model, l, dims);
        for h in 0..4 {
            // 4 elements from 2 rows: 2 lines × 2 banks, each bank 2 lines,
            // 2 ports → 1 cycle. Bandwidth model: 4/2 = 2 cycles.
            eval.observe([
                (0, 2 * h, 0),
                (0, 2 * h, 1),
                (0, 2 * h + 1, 0),
                (0, 2 * h + 1, 1),
            ]);
        }
        let r = eval.report();
        assert!(
            r.relative_slowdown() < 0.0,
            "expected banked win, got {}",
            r.relative_slowdown()
        );
    }

    #[test]
    fn empty_cycles_still_tick() {
        let model = BankModel::new(2, 1, 2);
        let mut eval =
            StreamEvaluator::new(model, LayoutSpec::row_major(4), TensorDims::matrix(4, 4));
        eval.observe(std::iter::empty());
        eval.observe([(0, 0, 0)]);
        let r = eval.report();
        assert_eq!(r.compute_cycles, 2);
        assert_eq!(r.layout_cycles, 2);
        assert_eq!(r.bandwidth_cycles, 2);
    }

    #[test]
    fn from_total_bandwidth_splits_evenly() {
        let m = BankModel::from_total_bandwidth(64, 16, 1);
        assert_eq!(m.bandwidth_per_bank(), 4);
        assert_eq!(m.total_bandwidth(), 64);
    }
}
