//! Layout specification: nested-loop dimension orders and the
//! line/column/bank index equations of paper §VI-B.

/// Dimensions of a `C × H × W` tensor stored in the on-chip memory.
///
/// Matrices are handled as `C = 1` tensors (`H` = rows, `W` = cols) or any
/// other convenient assignment — the equations are agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorDims {
    /// Channel extent.
    pub c: usize,
    /// Height extent.
    pub h: usize,
    /// Width extent.
    pub w: usize,
}

impl TensorDims {
    /// Creates tensor dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        assert!(c > 0 && h > 0 && w > 0, "tensor extents must be non-zero");
        Self { c, h, w }
    }

    /// For a matrix: rows map to `h`, columns to `w`.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Self::new(1, rows, cols)
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Whether the tensor has no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Where one element lives in the 2D multi-bank abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Line (row of the 2D array; same index across all banks).
    pub line: usize,
    /// Column within the aggregated line.
    pub col: usize,
    /// Bank serving that column.
    pub bank: usize,
}

/// A data layout: the inter-line dimension steps (how many consecutive
/// elements of each dimension share a line) — Fig. 11's
/// `C64 H8 W8 _ W2 H4 C16` notation keeps `w1_step = 2`, `h1_step = 4`,
/// `c1_step = 16` elements of each dimension per line.
///
/// Intra-line order is fixed to `w → h → c` (outer to inner), matching the
/// figure; the *steps* are what change behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayoutSpec {
    /// Channels per line tile (`c1_step`).
    pub c1_step: usize,
    /// Rows per line tile (`h1_step`).
    pub h1_step: usize,
    /// Columns per line tile (`w1_step`).
    pub w1_step: usize,
}

impl LayoutSpec {
    /// Creates a layout from the three inter-line steps.
    ///
    /// # Panics
    ///
    /// Panics if any step is zero.
    pub fn new(c1_step: usize, h1_step: usize, w1_step: usize) -> Self {
        assert!(
            c1_step > 0 && h1_step > 0 && w1_step > 0,
            "layout steps must be non-zero"
        );
        Self {
            c1_step,
            h1_step,
            w1_step,
        }
    }

    /// The worked example of Fig. 11: `C64 H8 W8 _ W2 H4 C16`.
    pub fn fig11() -> Self {
        Self::new(16, 4, 2)
    }

    /// Channel-major layout: a full line of consecutive channels
    /// (common for NHWC activations).
    pub fn channel_major(line_elems: usize) -> Self {
        Self::new(line_elems.max(1), 1, 1)
    }

    /// Row-major matrix layout: `line_elems` consecutive columns per line.
    pub fn row_major(line_elems: usize) -> Self {
        Self::new(1, 1, line_elems.max(1))
    }

    /// Column-major matrix layout: `line_elems` consecutive rows per line.
    pub fn column_major(line_elems: usize) -> Self {
        Self::new(1, line_elems.max(1), 1)
    }

    /// Elements per line (across all banks).
    pub fn line_elems(&self) -> usize {
        self.c1_step * self.h1_step * self.w1_step
    }

    /// The `(line, col)` of element `(c, h, w)` per the paper's equations:
    ///
    /// ```text
    /// line = ⌊c/c1⌋·⌈H/h1⌉·⌈W/w1⌉ + ⌊h/h1⌋·⌈W/w1⌉ + ⌊w/w1⌋
    /// col  = (w mod w1)·h1·c1 + (h mod h1)·c1 + (c mod c1)
    /// ```
    #[inline]
    pub fn place(&self, dims: TensorDims, c: usize, h: usize, w: usize) -> (usize, usize) {
        debug_assert!(
            c < dims.c && h < dims.h && w < dims.w,
            "coords out of range"
        );
        let h_tiles = dims.h.div_ceil(self.h1_step);
        let w_tiles = dims.w.div_ceil(self.w1_step);
        let line = (c / self.c1_step) * h_tiles * w_tiles
            + (h / self.h1_step) * w_tiles
            + (w / self.w1_step);
        let col = (w % self.w1_step) * self.h1_step * self.c1_step
            + (h % self.h1_step) * self.c1_step
            + (c % self.c1_step);
        (line, col)
    }

    /// Full placement including the bank, given the per-bank line width:
    /// `bank = ⌊col / bandwidth_per_bank⌋`.
    #[inline]
    pub fn place_banked(
        &self,
        dims: TensorDims,
        c: usize,
        h: usize,
        w: usize,
        bandwidth_per_bank: usize,
        num_banks: usize,
    ) -> Placement {
        let (line, col) = self.place(dims, c, h, w);
        Placement {
            line,
            col,
            bank: (col / bandwidth_per_bank.max(1)) % num_banks.max(1),
        }
    }

    /// Number of lines the tensor occupies.
    pub fn lines_needed(&self, dims: TensorDims) -> usize {
        dims.c.div_ceil(self.c1_step)
            * dims.h.div_ceil(self.h1_step)
            * dims.w.div_ceil(self.w1_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::identity_op)] // spelled-out factors mirror the worked example
    fn fig11_worked_example() {
        // C=64, H=8, W=8 with C64 H8 W8 _ W2 H4 C16.
        let dims = TensorDims::new(64, 8, 8);
        let l = LayoutSpec::fig11();
        assert_eq!(l.line_elems(), 128);
        // First line holds W0:1 × H0:3 × C0:15 (see Fig. 11 detail view).
        let (line0, col0) = l.place(dims, 0, 0, 0);
        assert_eq!((line0, col0), (0, 0));
        let (line, col) = l.place(dims, 15, 3, 1);
        assert_eq!(line, 0);
        assert_eq!(col, 1 * 4 * 16 + 3 * 16 + 15); // = 127, last column
                                                   // W0 H0 C16 starts a new line tile in the c1 direction: line jumps
                                                   // by H-tiles × W-tiles = 2 × 4 = 8.
        let (line_c16, _) = l.place(dims, 16, 0, 0);
        assert_eq!(line_c16, 8);
        // Next h tile: line + W-tiles.
        let (line_h4, _) = l.place(dims, 0, 4, 0);
        assert_eq!(line_h4, 4);
        // Next w tile: line + 1.
        let (line_w2, _) = l.place(dims, 0, 0, 2);
        assert_eq!(line_w2, 1);
    }

    #[test]
    fn fig11_bank_assignment() {
        // 16 banks × 8 elements per bank-line = 128-element lines.
        let dims = TensorDims::new(64, 8, 8);
        let l = LayoutSpec::fig11();
        let p = l.place_banked(dims, 0, 0, 0, 8, 16);
        assert_eq!(p.bank, 0);
        let p = l.place_banked(dims, 15, 3, 1, 8, 16);
        assert_eq!(p.bank, 15, "column 127 → bank 15 (Fig. 11)");
        let p = l.place_banked(dims, 8, 0, 0, 8, 16);
        assert_eq!(p.bank, 1, "column 8 starts bank 1");
    }

    #[test]
    fn placement_is_a_bijection() {
        let dims = TensorDims::new(8, 6, 10);
        let l = LayoutSpec::new(4, 3, 5);
        let mut seen = std::collections::HashSet::new();
        for c in 0..dims.c {
            for h in 0..dims.h {
                for w in 0..dims.w {
                    let (line, col) = l.place(dims, c, h, w);
                    assert!(col < l.line_elems());
                    assert!(line < l.lines_needed(dims));
                    assert!(seen.insert((line, col)), "collision at ({line},{col})");
                }
            }
        }
        assert_eq!(seen.len(), dims.len());
    }

    #[test]
    fn matrix_helpers() {
        let dims = TensorDims::matrix(4, 8);
        let rm = LayoutSpec::row_major(8);
        // One matrix row per line.
        let (l0, _) = rm.place(dims, 0, 0, 7);
        let (l1, _) = rm.place(dims, 0, 1, 0);
        assert_eq!(l0, 0);
        assert_eq!(l1, 1);
        let cm = LayoutSpec::column_major(4);
        // One matrix column per line.
        let (lc, _) = cm.place(dims, 0, 3, 0);
        let (lc2, _) = cm.place(dims, 0, 0, 1);
        assert_eq!(lc, 0);
        assert_eq!(lc2, 1);
    }

    #[test]
    fn lines_needed_counts_partial_tiles() {
        let dims = TensorDims::new(5, 5, 5);
        let l = LayoutSpec::new(2, 2, 2);
        assert_eq!(l.lines_needed(dims), 3 * 3 * 3);
    }
}
