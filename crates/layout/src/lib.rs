//! # scalesim-layout
//!
//! On-chip multi-bank memory data-layout modeling — SCALE-Sim v3's layout
//! feature (paper §VI).
//!
//! The multi-bank scratchpad is modeled as a 2D array: each *line*
//! aggregates the same row index across all banks, and each bank
//! contributes `bandwidth_per_bank` elements per line with a limited number
//! of access ports. A [`LayoutSpec`] places tensor elements into
//! `(line, column, bank)` coordinates through nested inter-line and
//! intra-line dimension orders (Fig. 11), and [`BankModel`] evaluates the
//! per-cycle bank-conflict slowdown
//!
//! ```text
//! slowdown(cycle) = max_i ⌈ lines_touched(bank_i) / ports(bank_i) ⌉
//! ```
//!
//! against the idealized pure-bandwidth model of SCALE-Sim v2
//! (Figs. 12–13).
//!
//! Within the integrated pipeline (the `scalesim` crate) this analysis
//! runs per layer when the layout feature is enabled, and design-space
//! sweeps toggle it per grid point via the `layout` axis; the crate map
//! lives in `docs/ARCHITECTURE.md`.
//!
//! ```
//! use scalesim_layout::{BankModel, LayoutSpec, TensorDims};
//!
//! let dims = TensorDims::new(64, 8, 8);
//! let layout = LayoutSpec::fig11(); // C64 H8 W8 _ W2 H4 C16
//! let model = BankModel::new(16, 1, 8);
//! // One cycle requesting 16 contiguous channels of one pixel: these share
//! // a single line, so every bank serves at most one line → no conflict.
//! let elems: Vec<_> = (0..16).map(|c| (c, 0, 0)).collect();
//! assert_eq!(model.cycle_slowdown(&layout, dims, elems.iter().copied()), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflict;
pub mod spec;

pub use conflict::{BankModel, SlowdownReport, StreamEvaluator};
pub use spec::{LayoutSpec, Placement, TensorDims};
