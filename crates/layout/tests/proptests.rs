//! Property-based tests of the layout model invariants.

// The `proptest` crate is not vendored (offline build); this suite only
// compiles with `--features proptests` where the registry is reachable.
#![cfg(feature = "proptests")]

use proptest::prelude::*;
use scalesim_layout::{BankModel, LayoutSpec, StreamEvaluator, TensorDims};
use std::collections::HashSet;

fn dims_and_layout() -> impl Strategy<Value = (TensorDims, LayoutSpec)> {
    (
        (1usize..12, 1usize..12, 1usize..12),
        (1usize..8, 1usize..8, 1usize..8),
    )
        .prop_map(|((c, h, w), (cs, hs, ws))| {
            (TensorDims::new(c, h, w), LayoutSpec::new(cs, hs, ws))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Placement is injective over the whole tensor and stays in bounds.
    #[test]
    fn placement_injective((dims, layout) in dims_and_layout()) {
        let mut seen = HashSet::new();
        for c in 0..dims.c {
            for h in 0..dims.h {
                for w in 0..dims.w {
                    let (line, col) = layout.place(dims, c, h, w);
                    prop_assert!(col < layout.line_elems());
                    prop_assert!(line < layout.lines_needed(dims));
                    prop_assert!(seen.insert((line, col)));
                }
            }
        }
    }

    /// More banks (same total bandwidth) never increase the slowdown —
    /// the paper's consistent observation in Figs. 12–13.
    #[test]
    fn more_banks_never_hurt(
        (dims, layout) in dims_and_layout(),
        picks in prop::collection::vec((0usize..1000, 0usize..1000, 0usize..1000), 1..64),
    ) {
        let elems: Vec<_> = picks
            .iter()
            .map(|&(a, b, c)| (a % dims.c, b % dims.h, c % dims.w))
            .collect();
        // Total bandwidth fixed at 16 elems/cycle.
        let few = BankModel::from_total_bandwidth(16, 2, 1);
        let many = BankModel::from_total_bandwidth(16, 16, 1);
        let s_few = few.cycle_slowdown(&layout, dims, elems.iter().copied());
        let s_many = many.cycle_slowdown(&layout, dims, elems.iter().copied());
        prop_assert!(
            s_many <= s_few,
            "16 banks ({s_many}) worse than 2 banks ({s_few})"
        );
    }

    /// The layout cost of a cycle is bounded below by the bandwidth-model
    /// cost divided by the port advantage, and above by the element count.
    #[test]
    fn slowdown_bounds(
        (dims, layout) in dims_and_layout(),
        picks in prop::collection::vec((0usize..1000, 0usize..1000, 0usize..1000), 1..64),
        banks_pow in 0u32..5,
        ports in 1usize..4,
    ) {
        let banks = 1usize << banks_pow;
        let model = BankModel::new(banks, ports, 4);
        let elems: Vec<_> = picks
            .iter()
            .map(|&(a, b, c)| (a % dims.c, b % dims.h, c % dims.w))
            .collect();
        let s = model.cycle_slowdown(&layout, dims, elems.iter().copied());
        prop_assert!(s >= 1);
        prop_assert!(s <= elems.len() as u64, "slowdown {} > elements {}", s, elems.len());
    }

    /// Stream accounting: layout and bandwidth cycle totals are both at
    /// least the compute-cycle count (every cycle costs ≥ 1).
    #[test]
    fn stream_totals_bounded(
        (dims, layout) in dims_and_layout(),
        cycles in prop::collection::vec(
            prop::collection::vec((0usize..100, 0usize..100, 0usize..100), 0..10), 1..30),
    ) {
        let model = BankModel::new(4, 1, 4);
        let mut eval = StreamEvaluator::new(model, layout, dims);
        for cyc in &cycles {
            eval.observe(cyc.iter().map(|&(a, b, c)| (a % dims.c, b % dims.h, c % dims.w)));
        }
        let r = eval.report();
        prop_assert_eq!(r.compute_cycles, cycles.len() as u64);
        prop_assert!(r.layout_cycles >= r.compute_cycles);
        prop_assert!(r.bandwidth_cycles >= r.compute_cycles);
        prop_assert!(r.relative_slowdown() >= -1.0);
    }
}
