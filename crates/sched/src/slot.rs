//! A lock-free write-once result slot.
//!
//! `parallel_map`-style batches write one result per index from
//! whichever worker claimed that index, then the submitter drains the
//! slots in order. `std::sync::OnceLock` would demand `T: Sync` for
//! sharing; this slot only needs `T: Send` (like the `Mutex<Option<T>>`
//! it replaces) because the value is never read while shared — it is
//! written exactly once and only taken after the scope's completion
//! latch has synchronized writer and reader.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU8, Ordering};

const EMPTY: u8 = 0;
const WRITING: u8 = 1;
const WRITTEN: u8 = 2;

/// A slot that is written at most once (from any thread) and then
/// consumed by value. An unwritten slot reads back as `None`, so a
/// cancelled or poisoned batch leaves detectable holes instead of
/// hanging a reader.
pub struct OnceSlot<T> {
    state: AtomicU8,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: the slot hands the value across threads exactly once
// (write-side CAS gives the writer exclusivity; the Release store /
// Acquire load pair orders the value for the consumer), so `T: Send`
// suffices — no `&T` is ever produced from a shared slot.
unsafe impl<T: Send> Send for OnceSlot<T> {}
unsafe impl<T: Send> Sync for OnceSlot<T> {}

impl<T> OnceSlot<T> {
    /// An empty slot.
    pub const fn empty() -> Self {
        Self {
            state: AtomicU8::new(EMPTY),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Stores `value`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already set — every scope index is
    /// claimed exactly once, so a second write is a scheduler bug.
    pub fn set(&self, value: T) {
        if self
            .state
            .compare_exchange(EMPTY, WRITING, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            panic!("OnceSlot::set called twice");
        }
        // SAFETY: the CAS above gives this thread exclusive write
        // access; readers wait for the WRITTEN state.
        unsafe { (*self.value.get()).write(value) };
        self.state.store(WRITTEN, Ordering::Release);
    }

    /// Takes the value out, or `None` if the slot was never written.
    pub fn into_inner(self) -> Option<T> {
        let mut this = std::mem::ManuallyDrop::new(self);
        if *this.state.get_mut() == WRITTEN {
            // SAFETY: WRITTEN means a fully initialised value that is
            // read exactly once (Drop is suppressed by ManuallyDrop).
            Some(unsafe { this.value.get_mut().assume_init_read() })
        } else {
            None
        }
    }
}

impl<T> Drop for OnceSlot<T> {
    fn drop(&mut self) {
        if *self.state.get_mut() == WRITTEN {
            // SAFETY: written and never taken (into_inner suppresses
            // this Drop), so the value must be freed here.
            unsafe { self.value.get_mut().assume_init_drop() };
        }
    }
}

impl<T> Default for OnceSlot<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T> std::fmt::Debug for OnceSlot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.state.load(Ordering::Acquire) {
            WRITTEN => "written",
            WRITING => "writing",
            _ => "empty",
        };
        f.debug_struct("OnceSlot").field("state", &state).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_then_take() {
        let slot = OnceSlot::empty();
        slot.set(41u32);
        assert_eq!(slot.into_inner(), Some(41));
    }

    #[test]
    fn unwritten_reads_back_as_none() {
        let slot: OnceSlot<String> = OnceSlot::empty();
        assert_eq!(slot.into_inner(), None);
    }

    #[test]
    #[should_panic(expected = "called twice")]
    fn double_set_panics() {
        let slot = OnceSlot::empty();
        slot.set(1u8);
        slot.set(2u8);
    }

    #[test]
    fn dropping_a_written_slot_frees_the_value() {
        let token = Arc::new(());
        let slot = OnceSlot::empty();
        slot.set(Arc::clone(&token));
        assert_eq!(Arc::strong_count(&token), 2);
        drop(slot);
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn taking_a_written_slot_transfers_ownership_once() {
        let token = Arc::new(());
        let slot = OnceSlot::empty();
        slot.set(Arc::clone(&token));
        let taken = slot.into_inner().unwrap();
        assert_eq!(Arc::strong_count(&token), 2);
        drop(taken);
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn slots_move_values_across_threads() {
        let slots: Vec<OnceSlot<usize>> = (0..64).map(|_| OnceSlot::empty()).collect();
        std::thread::scope(|s| {
            for chunk in slots.chunks(16).enumerate() {
                let (c, chunk) = chunk;
                s.spawn(move || {
                    for (i, slot) in chunk.iter().enumerate() {
                        slot.set(c * 16 + i);
                    }
                });
            }
        });
        let values: Vec<usize> = slots.into_iter().map(|s| s.into_inner().unwrap()).collect();
        assert_eq!(values, (0..64).collect::<Vec<_>>());
    }
}
