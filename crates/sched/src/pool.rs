//! The worker pool: per-worker deques, the priority injector, parking
//! and the public [`Scheduler`] API.

use crate::scope::ScopeCore;
use scalesim_obs as obs;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Task class of a submission. The global injector serves
/// `Interactive` work strictly before `Batch` work, so a serve
/// request's layer tasks never queue behind a design-space sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive work: serve requests and one-shot CLI runs.
    #[default]
    Interactive,
    /// Throughput work that tolerates queueing: sweep grids.
    Batch,
}

/// One unit of queued work.
enum Runnable {
    /// A fire-and-forget `'static` task (e.g. a serve-queue runner).
    Detached {
        priority: Priority,
        run: Box<dyn FnOnce() + Send>,
    },
    /// A handle onto a scoped batch; the popping worker claims items
    /// from the scope's shared cursor until none remain.
    Scope {
        priority: Priority,
        core: Arc<ScopeCore>,
    },
}

/// Wakes parked workers without lost-wakeup races: a worker reads the
/// sequence number *before* scanning for work, and only parks if the
/// number is unchanged — a ring between scan and park bumps it, so the
/// park returns immediately.
struct Bell {
    seq: Mutex<u64>,
    wake: Condvar,
}

impl Bell {
    fn current(&self) -> u64 {
        *self.seq.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn ring(&self) {
        let mut seq = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        *seq += 1;
        drop(seq);
        self.wake.notify_all();
    }

    fn wait_past(&self, seen: u64) {
        let mut seq = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        while *seq == seen {
            seq = self.wake.wait(seq).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The two-class global injector: work submitted from outside the
/// pool, FIFO within a class, interactive before batch.
#[derive(Default)]
struct Injector {
    interactive: VecDeque<Runnable>,
    batch: VecDeque<Runnable>,
}

struct Shared {
    /// Distinguishes this pool's workers from another pool's.
    id: u64,
    injector: Mutex<Injector>,
    /// One deque per worker: the owner pushes/pops at the front
    /// (newest first), thieves steal from the back (oldest first).
    locals: Vec<Mutex<VecDeque<Runnable>>>,
    bell: Bell,
    shutdown: AtomicBool,
    /// Successful steals from a sibling deque (find_work step 3).
    steals: AtomicU64,
    /// Detached tasks ever submitted.
    spawns: AtomicU64,
    /// Times a parked worker woke to look for work again.
    park_wakeups: AtomicU64,
}

/// A relaxed snapshot of a pool's scheduling counters, as surfaced by
/// the serve `stats` response and the Prometheus exposition. All
/// counters are monotonic over the pool's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Successful steals of queued work from a sibling worker.
    pub steals: u64,
    /// Detached (fire-and-forget) tasks submitted.
    pub spawns: u64,
    /// Times a parked worker was woken by the bell.
    pub park_wakeups: u64,
}

/// A persistent work-stealing worker pool. Use [`Scheduler::global`]
/// for the process-wide pool every simulation layer shares; private
/// pools ([`Scheduler::new`]) exist for tests and benchmarks.
pub struct Scheduler {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers())
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Builds a private pool with `workers` threads (clamped to at
    /// least 1). Most callers want [`global`](Self::global) instead.
    pub fn new(workers: usize) -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(Injector::default()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            bell: Bell {
                seq: Mutex::new(0),
                wake: Condvar::new(),
            },
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            spawns: AtomicU64::new(0),
            park_wakeups: AtomicU64::new(0),
        });
        let threads = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scalesim-worker-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Self { shared, threads }
    }

    /// The process-wide pool, created on first use with
    /// [`crate::default_workers`] threads (`SCALESIM_THREADS` read
    /// once, at that moment).
    pub fn global() -> &'static Scheduler {
        static GLOBAL: OnceLock<Scheduler> = OnceLock::new();
        GLOBAL.get_or_init(|| Scheduler::new(crate::default_workers()))
    }

    /// The pool's worker-thread count.
    pub fn workers(&self) -> usize {
        self.shared.locals.len()
    }

    /// A relaxed snapshot of the pool's scheduling counters.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            workers: self.workers(),
            steals: self.shared.steals.load(Ordering::Relaxed),
            spawns: self.shared.spawns.load(Ordering::Relaxed),
            park_wakeups: self.shared.park_wakeups.load(Ordering::Relaxed),
        }
    }

    /// Runs `task(i)` for every `i in 0..len`, returning when all have
    /// completed. Items are claimed from a shared cursor by the
    /// calling thread *and* any idle worker, so costs balance; results
    /// must be written by index (the caller's closure owns the slots),
    /// which keeps output identical to serial execution for any worker
    /// count.
    ///
    /// `cancelled` (when given) is polled before each claimed item;
    /// once it returns true the scope stops claiming and the remaining
    /// items are skipped — the caller is expected to detect the
    /// cancellation itself (e.g. via its deadline token).
    ///
    /// The calling thread participates, so this completes even when
    /// every worker is busy — nested scopes cannot deadlock.
    ///
    /// # Panics
    ///
    /// If a task panics, remaining items are skipped and the first
    /// panic resumes on the calling thread after the scope completes.
    pub fn scope(
        &self,
        len: usize,
        priority: Priority,
        cancelled: Option<&(dyn Fn() -> bool + Sync)>,
        task: &(dyn Fn(usize) + Sync),
    ) {
        match len {
            0 => return,
            1 => {
                // Inline fast path: no queueing, and a panic unwinds
                // straight through the caller.
                if !cancelled.is_some_and(|c| c()) {
                    task(0);
                }
                return;
            }
            _ => {}
        }
        // SAFETY: this frame keeps `task` and `cancelled` borrowed
        // across `wait_done` below, which blocks until every item has
        // completed — the erasure invariant of `ScopeCore::new`.
        let core = Arc::new(unsafe { ScopeCore::new(task, cancelled, len) });
        // The caller claims items too, so at most `len - 1` helpers
        // can ever find work.
        let helpers = self.workers().min(len - 1);
        self.share(priority, &core, helpers);
        core.work();
        let panic = core.wait_done();
        drop(core);
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Queues copies of a scope for `helpers` workers: onto the local
    /// deque when submitted by one of this pool's own workers (nested
    /// parallelism stays hot and LIFO), onto the injector otherwise.
    fn share(&self, priority: Priority, core: &Arc<ScopeCore>, helpers: usize) {
        if helpers == 0 {
            return;
        }
        match crate::worker_slot() {
            Some((pool, index)) if pool == self.shared.id => {
                let mut deque = self.shared.locals[index]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                for _ in 0..helpers {
                    deque.push_front(Runnable::Scope {
                        priority,
                        core: Arc::clone(core),
                    });
                }
            }
            _ => {
                let mut injector = self
                    .shared
                    .injector
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                let queue = match priority {
                    Priority::Interactive => &mut injector.interactive,
                    Priority::Batch => &mut injector.batch,
                };
                for _ in 0..helpers {
                    queue.push_back(Runnable::Scope {
                        priority,
                        core: Arc::clone(core),
                    });
                }
            }
        }
        self.shared.bell.ring();
    }

    /// Submits a fire-and-forget task. The task runs on some worker
    /// with `priority` as its ambient class; a panic inside it is
    /// caught (and logged) so it cannot kill the worker. Tasks still
    /// queued when the pool is dropped are discarded.
    pub fn spawn_detached(&self, priority: Priority, run: Box<dyn FnOnce() + Send>) {
        self.shared.spawns.fetch_add(1, Ordering::Relaxed);
        let mut injector = self
            .shared
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let queue = match priority {
            Priority::Interactive => &mut injector.interactive,
            Priority::Batch => &mut injector.batch,
        };
        queue.push_back(Runnable::Detached { priority, run });
        drop(injector);
        self.shared.bell.ring();
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.bell.ring();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    crate::set_worker_slot(Some((shared.id, me)));
    let label = format!("worker-{me}");
    obs::label_thread(&label);
    loop {
        // Read the bell *before* scanning: a ring after this read but
        // before the park bumps the sequence, so the park is a no-op.
        let seen = shared.bell.current();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(runnable) = find_work(shared, me) {
            run_one(runnable);
            continue;
        }
        {
            let _park = obs::span(obs::Category::Sched, "park");
            shared.bell.wait_past(seen);
        }
        shared.park_wakeups.fetch_add(1, Ordering::Relaxed);
    }
}

fn find_work(shared: &Shared, me: usize) -> Option<Runnable> {
    // 1. Own deque, newest first: nested work stays on its submitter.
    if let Some(r) = shared.locals[me]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_front()
    {
        return Some(r);
    }
    // 2. The injector, interactive before batch.
    {
        let mut injector = shared.injector.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(r) = injector
            .interactive
            .pop_front()
            .or_else(|| injector.batch.pop_front())
        {
            return Some(r);
        }
    }
    // 3. Steal the *oldest* work from a sibling.
    for other in (me + 1..shared.locals.len()).chain(0..me) {
        if let Some(r) = shared.locals[other]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_back()
        {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            obs::instant(
                obs::Category::Sched,
                "steal",
                &[("from", other as u64), ("to", me as u64)],
            );
            return Some(r);
        }
    }
    None
}

fn run_one(runnable: Runnable) {
    match runnable {
        Runnable::Detached { priority, run } => crate::with_priority(priority, || {
            let _span = obs::span(obs::Category::Sched, "run-detached");
            // A detached task has no submitter to resume a panic on;
            // contain it so the worker survives (the serve layer has
            // its own per-request catch, so this is a backstop).
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)).is_err() {
                eprintln!("scalesim-sched: detached task panicked (contained)");
            }
        }),
        Runnable::Scope { priority, core } => crate::with_priority(priority, || {
            let _span = obs::span(obs::Category::Sched, "run-scope");
            core.work();
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn scope_runs_every_index_exactly_once() {
        let pool = Scheduler::new(4);
        for len in [0usize, 1, 2, 3, 17, 256] {
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            pool.scope(len, Priority::Interactive, None, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "len={len}"
            );
        }
    }

    #[test]
    fn nested_scopes_complete_even_on_a_single_worker_pool() {
        let pool = Scheduler::new(1);
        let total = AtomicUsize::new(0);
        pool.scope(4, Priority::Batch, None, &|_| {
            pool.scope(8, Priority::Interactive, None, &|_| {
                pool.scope(2, Priority::Interactive, None, &|_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 8 * 2);
    }

    #[test]
    fn a_panicking_task_surfaces_as_a_panic_not_a_hang() {
        let pool = Scheduler::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(64, Priority::Interactive, None, &|i| {
                if i == 11 {
                    panic!("task 11 poisoned");
                }
            });
        }));
        let payload = result.expect_err("scope must propagate the panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("task 11 poisoned"), "{message}");
        // The pool survives and runs the next scope normally.
        let ran = AtomicUsize::new(0);
        pool.scope(8, Priority::Interactive, None, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn cancellation_stops_claiming_and_still_completes() {
        let pool = Scheduler::new(2);
        let executed = AtomicUsize::new(0);
        let cancelled = || executed.load(Ordering::Relaxed) >= 5;
        pool.scope(1000, Priority::Interactive, Some(&cancelled), &|_| {
            executed.fetch_add(1, Ordering::Relaxed);
        });
        let ran = executed.load(Ordering::Relaxed);
        assert!(ran >= 5, "runs until the hook trips");
        assert!(ran < 1000, "skips the tail once cancelled (ran {ran})");
    }

    #[test]
    fn interactive_detached_tasks_run_before_batch_ones() {
        // One worker, parked on a blocker while both classes queue:
        // the drain order is then deterministic.
        let pool = Scheduler::new(1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (order_tx, order_rx) = mpsc::channel::<&'static str>();
        pool.spawn_detached(
            Priority::Interactive,
            Box::new(move || {
                block_rx.recv().unwrap();
            }),
        );
        let tx = order_tx.clone();
        pool.spawn_detached(Priority::Batch, Box::new(move || tx.send("batch").unwrap()));
        let tx = order_tx;
        pool.spawn_detached(
            Priority::Interactive,
            Box::new(move || tx.send("interactive").unwrap()),
        );
        block_tx.send(()).unwrap();
        assert_eq!(order_rx.recv().unwrap(), "interactive");
        assert_eq!(order_rx.recv().unwrap(), "batch");
    }

    #[test]
    fn a_panicking_detached_task_does_not_kill_the_worker() {
        let pool = Scheduler::new(1);
        let (tx, rx) = mpsc::channel::<u32>();
        pool.spawn_detached(Priority::Interactive, Box::new(|| panic!("contained")));
        pool.spawn_detached(Priority::Interactive, Box::new(move || tx.send(7).unwrap()));
        assert_eq!(rx.recv().unwrap(), 7, "worker survived the panic");
    }

    #[test]
    fn worker_index_is_set_on_workers_and_absent_elsewhere() {
        assert_eq!(crate::worker_index(), None);
        let pool = Scheduler::new(3);
        let (tx, rx) = mpsc::channel();
        pool.spawn_detached(
            Priority::Interactive,
            Box::new(move || tx.send(crate::worker_index()).unwrap()),
        );
        let index = rx.recv().unwrap().expect("workers know their index");
        assert!(index < 3);
    }

    #[test]
    fn with_priority_nests_and_restores() {
        assert_eq!(crate::current_priority(), Priority::Interactive);
        crate::with_priority(Priority::Batch, || {
            assert_eq!(crate::current_priority(), Priority::Batch);
            crate::with_priority(Priority::Interactive, || {
                assert_eq!(crate::current_priority(), Priority::Interactive);
            });
            assert_eq!(crate::current_priority(), Priority::Batch);
        });
        assert_eq!(crate::current_priority(), Priority::Interactive);
    }

    #[test]
    fn stats_count_spawns_and_wakeups() {
        let pool = Scheduler::new(2);
        let before = pool.stats();
        assert_eq!(before.workers, 2);
        assert_eq!(before.spawns, 0);
        let (tx, rx) = mpsc::channel::<()>();
        for _ in 0..3 {
            let tx = tx.clone();
            pool.spawn_detached(
                Priority::Interactive,
                Box::new(move || tx.send(()).unwrap()),
            );
        }
        for _ in 0..3 {
            rx.recv().unwrap();
        }
        let after = pool.stats();
        assert_eq!(after.spawns, 3);
        // Wakeups only count once a worker actually parked — which the
        // initial spawns may beat (workers are still in their first
        // scan). Let the pool go idle so the workers park, then spawn
        // again: that bell must register a wakeup. Retry to absorb
        // scheduling jitter.
        let mut woke = after.park_wakeups >= 1;
        for _ in 0..100 {
            if woke {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
            let (tx, rx) = mpsc::channel::<()>();
            pool.spawn_detached(Priority::Interactive, Box::new(move || tx.send(()).unwrap()));
            rx.recv().unwrap();
            woke = pool.stats().park_wakeups >= 1;
        }
        assert!(woke, "workers parked and woke at least once");
    }

    #[test]
    fn many_threads_can_submit_scopes_to_one_pool_concurrently() {
        let pool = Scheduler::new(2);
        let grand_total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..16 {
                        pool.scope(32, Priority::Interactive, None, &|_| {
                            grand_total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(grand_total.load(Ordering::Relaxed), 8 * 16 * 32);
    }
}
