//! # scalesim-sched
//!
//! One persistent work-stealing scheduler for every parallel layer of
//! the simulator: per-layer sims, sweep points, scale-out shards and
//! serve requests all execute as tasks of a single process-wide worker
//! pool instead of three disjoint ad-hoc pools.
//!
//! ## Design
//!
//! * **Workers are created once per process** ([`Scheduler::global`],
//!   sized by `SCALESIM_THREADS` or the machine parallelism) and live
//!   for its whole lifetime, so a `parallel_map` call costs a queue
//!   push instead of OS thread spawn/join.
//! * **Per-worker LIFO deques + a global injector.** Work submitted
//!   from outside the pool lands in the injector; work submitted by a
//!   worker (nested parallelism) goes to the front of its own deque.
//!   Idle workers drain their own deque front-first, then the
//!   injector, then steal from the *back* of sibling deques — newest
//!   work stays hot on its submitter, oldest work migrates.
//! * **Task classes with priorities.** Every submission carries a
//!   [`Priority`]; the injector serves [`Priority::Interactive`]
//!   (serve requests) strictly before [`Priority::Batch`] (sweep
//!   grids). The ambient priority propagates to nested submissions
//!   ([`with_priority`], [`current_priority`]), so an interactive
//!   request's layer tasks outrank a batch sweep's even three levels
//!   of nesting down.
//! * **Scoped batches with caller-help.** [`Scheduler::scope`] runs a
//!   borrowed closure over `0..len` indices: items are claimed from a
//!   shared atomic cursor (so heterogeneous layer costs balance), and
//!   the *submitting* thread claims alongside the workers. Because the
//!   submitter always drains whatever is unclaimed, a scope completes
//!   even on a fully busy (or single-worker) pool — nested scopes
//!   cannot deadlock and never oversubscribe the machine.
//! * **Cancellation.** A scope may carry a cancellation hook (the
//!   serve layer passes its deadline `CancelToken`); it is checked
//!   before every claimed item, so an expired request stops claiming
//!   work immediately instead of simulating layers nobody will read.
//! * **Determinism.** The scheduler never reorders *results*: scopes
//!   write by index, so callers observe output identical to serial
//!   execution for any worker count, stealing pattern or priority mix.
//!
//! Panics inside a scope task are caught, the scope's remaining items
//! are skipped, and the panic resumes on the submitting thread once
//! the scope completes — a poisoned batch surfaces as a panic, never
//! as a hang.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod pool;
mod scope;
mod slot;

pub use pool::{Priority, SchedStats, Scheduler};
pub use slot::OnceSlot;

use std::cell::Cell;

/// Environment variable overriding the process-wide worker count.
///
/// Read **once**, when the global pool is first used; later changes to
/// the variable only affect the serial-fast-path decision of callers
/// that re-read it (see `scalesim_systolic::parallel_map`).
pub const THREADS_ENV: &str = "SCALESIM_THREADS";

/// The worker count the global pool is built with: `SCALESIM_THREADS`
/// when set to a positive integer, otherwise the machine's available
/// parallelism.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

thread_local! {
    /// Ambient task class for submissions from this thread; workers
    /// set it to the class of whatever they are executing, so nested
    /// submissions inherit it.
    static CURRENT_PRIORITY: Cell<Priority> = const { Cell::new(Priority::Interactive) };
    /// `(pool id, worker index)` on scheduler worker threads, `None`
    /// elsewhere. The pool id keeps two coexisting pools (e.g. the
    /// global one and a private bench pool) from mistaking each
    /// other's workers for their own.
    static WORKER_SLOT: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// The ambient [`Priority`] new submissions from this thread carry.
pub fn current_priority() -> Priority {
    CURRENT_PRIORITY.get()
}

/// Runs `f` with the ambient submission priority set to `priority`,
/// restoring the previous value afterwards (also on unwind).
pub fn with_priority<R>(priority: Priority, f: impl FnOnce() -> R) -> R {
    struct Restore(Priority);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_PRIORITY.set(self.0);
        }
    }
    let _restore = Restore(CURRENT_PRIORITY.replace(priority));
    f()
}

/// The calling thread's worker index within its pool, or `None` when
/// called from a thread that is not a scheduler worker. Useful for
/// asserting how many distinct workers participated in a batch.
pub fn worker_index() -> Option<usize> {
    WORKER_SLOT.get().map(|(_, index)| index)
}

pub(crate) fn worker_slot() -> Option<(u64, usize)> {
    WORKER_SLOT.get()
}

pub(crate) fn set_worker_slot(slot: Option<(u64, usize)>) {
    WORKER_SLOT.set(slot);
}
