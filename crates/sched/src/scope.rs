//! The shared core of one scoped batch: an atomic claim cursor over
//! `0..len` indices of a borrowed task closure, a completion latch,
//! first-panic capture and a cancellation hook.
//!
//! This module contains the workspace's **only** `unsafe` code: the
//! lifetime erasure that lets persistent worker threads call a closure
//! borrowed from the submitting thread's stack. Soundness rests on one
//! invariant, enforced by [`crate::Scheduler::scope`]:
//!
//! > The submitting thread blocks until every one of the scope's `len`
//! > items has completed (`wait_done`), and the erased closures are
//! > only dereferenced under a successfully claimed index `< len`.
//!
//! Claiming an index and completing it bracket every dereference, and
//! the completion count is published under a mutex — so the submitter
//! observes all `len` completions *after* the last dereference
//! happens-before the latch opens. Stale queue entries that outlive
//! the scope (workers pop them later) only ever read the cursor, find
//! it exhausted, and bail without touching the closure pointers —
//! which is why they are stored as raw pointers, not references.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Type-erased pointer to the scope's borrowed task closure.
struct TaskPtr(*const (dyn Fn(usize) + Sync));

/// Type-erased pointer to the scope's borrowed cancellation hook.
struct CancelPtr(*const (dyn Fn() -> bool + Sync));

// SAFETY: the pointees are `Sync` (the trait objects carry the bound),
// so shared calls from many workers are fine; the pointers are only
// dereferenced while the submitting thread is parked in `scope`,
// which keeps the borrows alive (module-level invariant).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}
unsafe impl Send for CancelPtr {}
unsafe impl Sync for CancelPtr {}

/// State shared between the submitter and every worker helping on one
/// scoped batch.
pub(crate) struct ScopeCore {
    task: TaskPtr,
    cancelled: Option<CancelPtr>,
    len: usize,
    /// Next unclaimed index; claims past `len` mean "nothing left".
    cursor: AtomicUsize,
    /// Set on the first panic or cancellation: remaining claims skip
    /// their item (but still count toward the completion latch).
    abandoned: AtomicBool,
    done: Mutex<Done>,
    latch: Condvar,
}

struct Done {
    completed: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl ScopeCore {
    /// Erases the lifetimes of `task` and `cancelled`.
    ///
    /// # Safety
    ///
    /// The caller must keep both borrows alive and unmoved until
    /// [`wait_done`](Self::wait_done) has returned on the submitting
    /// thread, and must call `wait_done` before the borrows end.
    pub(crate) unsafe fn new(
        task: &(dyn Fn(usize) + Sync),
        cancelled: Option<&(dyn Fn() -> bool + Sync)>,
        len: usize,
    ) -> Self {
        // SAFETY: the transmute only widens the trait object's
        // lifetime bound to 'static, and the widened reference is
        // immediately demoted to a raw pointer (so no reference
        // outlives the borrow); the module invariant guarantees no
        // dereference does either.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        let task = TaskPtr(task as *const _);
        let cancelled =
            cancelled.map(|c| {
                // SAFETY: as above.
                let c: &'static (dyn Fn() -> bool + Sync) = unsafe {
                    std::mem::transmute::<
                        &(dyn Fn() -> bool + Sync),
                        &'static (dyn Fn() -> bool + Sync),
                    >(c)
                };
                CancelPtr(c as *const _)
            });
        Self {
            task,
            cancelled,
            len,
            cursor: AtomicUsize::new(0),
            abandoned: AtomicBool::new(false),
            done: Mutex::new(Done {
                completed: 0,
                panic: None,
            }),
            latch: Condvar::new(),
        }
    }

    /// Claims and runs items until the cursor is exhausted. Called by
    /// the submitter (caller-help) and by any worker that popped a
    /// copy of this scope; a copy popped after the scope finished
    /// finds the cursor exhausted and returns immediately.
    pub(crate) fn work(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                // Park the cursor so stale pops cannot creep toward
                // overflow one fetch_add at a time.
                self.cursor.store(self.len, Ordering::Relaxed);
                return;
            }
            let skip = self.abandoned.load(Ordering::Relaxed) || self.check_cancelled();
            if !skip {
                // SAFETY: `i < len` means the completion latch cannot
                // have opened yet, so the submitter is still parked in
                // `scope` and the borrow behind `task` is alive.
                let task = unsafe { &*self.task.0 };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                    self.abandoned.store(true, Ordering::Relaxed);
                    let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
                    if done.panic.is_none() {
                        done.panic = Some(payload);
                    }
                }
            }
            self.complete_one();
        }
    }

    fn check_cancelled(&self) -> bool {
        let Some(hook) = &self.cancelled else {
            return false;
        };
        // SAFETY: only reached under a claimed index < len; same
        // liveness argument as for `task`.
        let hook = unsafe { &*hook.0 };
        if hook() {
            self.abandoned.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn complete_one(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        done.completed += 1;
        if done.completed == self.len {
            drop(done);
            self.latch.notify_all();
        }
    }

    /// Blocks the submitter until every item has completed, returning
    /// the first captured panic payload (to be resumed by the caller).
    pub(crate) fn wait_done(&self) -> Option<Box<dyn Any + Send>> {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while done.completed < self.len {
            done = self.latch.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        done.panic.take()
    }
}
