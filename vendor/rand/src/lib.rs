//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of the rand 0.9 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`RngExt::random_range`] over
//! inclusive `usize` ranges. The generator is SplitMix64 — deterministic,
//! uniform, and more than adequate for synthesizing sparsity patterns.
//! It makes no attempt to match upstream rand's output streams.

#![forbid(unsafe_code)]

use std::ops::RangeInclusive;

/// A random number generator that can be seeded from integers.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods (rand 0.9 spells this `Rng`; the
/// workspace imports it as `RngExt`).
pub trait RngExt {
    /// Returns the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from an inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (`start > end`).
    fn random_range(&mut self, range: RangeInclusive<usize>) -> usize {
        let (start, end) = (*range.start(), *range.end());
        assert!(start <= end, "cannot sample from empty range");
        let span = (end - start) as u64 + 1;
        // Multiply-shift keeps the mapping unbiased enough for the small
        // spans (block sizes) used here without a rejection loop.
        let x = self.next_u64();
        start + ((x as u128 * span as u128) >> 64) as usize
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard RNG: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_sampling_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.random_range(2..=6);
            assert!((2..=6).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 2..=6 sampled");
    }

    #[test]
    fn singleton_range() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.random_range(3..=3), 3);
    }
}
