//! Cross-crate integration tests: full pipelines through the public API.

use scale_sim::systolic::{ArrayShape, Dataflow, GemmShape, Layer, MemoryConfig};
use scale_sim::workloads;
use scale_sim::{DramIntegration, ScaleSim, ScaleSimConfig};

fn small_config() -> ScaleSimConfig {
    let mut config = ScaleSimConfig::default();
    config.core.array = ArrayShape::new(16, 16);
    config.core.dataflow = Dataflow::WeightStationary;
    config.core.memory = MemoryConfig::from_kilobytes(64, 64, 32, 2);
    config
}

/// Runs `layers` through the full pipeline (DRAM + energy + layout
/// enabled) and asserts every optional stage reported consistently.
fn assert_full_pipeline<'a>(layers: impl Iterator<Item = &'a Layer>) {
    let mut config = small_config();
    config.enable_dram = true;
    config.enable_energy = true;
    config.enable_layout = true;
    let sim = ScaleSim::new(config);
    let mut ran = 0;
    for layer in layers {
        let r = sim.run_gemm(layer.name(), layer.gemm());
        assert!(r.total_cycles() > 0, "{}", layer.name());
        let dram = r.dram.as_ref().unwrap();
        assert!(dram.stats.reads > 0);
        assert!(dram.stats.row_hit_rate() > 0.3, "streaming should hit rows");
        assert!(r.energy.as_ref().unwrap().total_mj() > 0.0);
        assert!(r.layout.as_ref().unwrap().compute_cycles > 0);
        // The DRAM-aware total can never beat the stall-free compute.
        assert!(r.total_cycles() >= r.report.compute.total_compute_cycles);
        ran += 1;
    }
    assert!(ran > 0, "workload slice must not be empty");
}

#[test]
fn cifar_cnn_layers_full_pipeline() {
    // ~10M-MAC conv layers exercise the same DRAM/energy/layout
    // integration as ResNet-18's 100M-MAC layers at a fraction of the
    // cost; the heavy ResNet-18 variant below covers those in CI.
    let net = workloads::cifar_cnn();
    assert_full_pipeline(net.iter().skip(3).take(3));
}

#[test]
#[ignore = "minutes-long in debug; CI runs it via `cargo test --release -- --ignored`"]
fn resnet18_first_layers_full_pipeline() {
    let net = workloads::resnet18();
    assert_full_pipeline(net.iter().take(3));
}

#[test]
fn dataflow_choice_changes_results_consistently() {
    // All three dataflows must process identical MACs and produce
    // comparable (same order of magnitude) runtimes on a square GEMM.
    let gemm = GemmShape::new(96, 96, 96);
    let mut cycles = Vec::new();
    for df in Dataflow::ALL {
        let mut config = small_config();
        config.core.dataflow = df;
        let r = ScaleSim::new(config).run_gemm("g", gemm);
        assert_eq!(r.report.compute.macs, gemm.macs());
        cycles.push(r.report.compute.total_compute_cycles);
    }
    let max = *cycles.iter().max().unwrap();
    let min = *cycles.iter().min().unwrap();
    assert!(max < min * 3, "dataflows diverge too much: {cycles:?}");
}

#[test]
fn conv_lowering_matches_direct_gemm() {
    // A conv layer and its explicit im2col GEMM must simulate identically.
    let net = workloads::alexnet();
    let conv = &net.layers()[1];
    let gemm = conv.gemm();
    let sim = ScaleSim::new(small_config());
    let via_conv = sim.run_gemm("conv", gemm);
    let via_gemm = sim.run_gemm("gemm", gemm);
    assert_eq!(
        via_conv.report.compute.total_compute_cycles,
        via_gemm.report.compute.total_compute_cycles
    );
    assert_eq!(via_conv.total_cycles(), via_gemm.total_cycles());
}

#[test]
fn analytical_vs_cycle_accurate_agreement() {
    use scale_sim::systolic::AnalyticalModel;
    // For evenly-dividing shapes the closed form equals the simulator.
    let gemm = GemmShape::new(64, 64, 64);
    for df in Dataflow::ALL {
        let model = AnalyticalModel::new(ArrayShape::new(16, 16), df, gemm);
        let mut config = small_config();
        config.core.dataflow = df;
        let r = ScaleSim::new(config).run_gemm("g", gemm);
        assert_eq!(
            model.exact_runtime_cycles(),
            r.report.compute.total_compute_cycles,
            "{df}"
        );
    }
}

#[test]
fn multicore_speedup_and_work_conservation() {
    use scale_sim::multicore::{L2Config, PartitionGrid, PartitionScheme};
    let gemm = GemmShape::new(256, 256, 128);
    let single = ScaleSim::new(small_config()).run_gemm("g", gemm);
    let mut config = small_config();
    config.multicore = Some(scalesim::config::MultiCoreIntegration {
        grid: PartitionGrid::new(2, 2),
        scheme: PartitionScheme::Spatial,
        l2: Some(L2Config::default()),
    });
    let multi = ScaleSim::new(config).run_gemm("g", gemm);
    assert!(multi.report.compute.total_compute_cycles < single.report.compute.total_compute_cycles);
    assert!(multi.report.compute.macs * 4 >= gemm.macs());
}

#[test]
fn sparsity_storage_and_cycles_consistent() {
    use scale_sim::sparse::NmRatio;
    use scale_sim::SparsityMode;
    let gemm = GemmShape::new(64, 128, 256);
    let mut config = small_config();
    config.sparsity = Some(SparsityMode::LayerWise(NmRatio::new(1, 4).unwrap()));
    let r = ScaleSim::new(config).run_gemm("g", gemm);
    assert_eq!(r.gemm.k, 64, "1:4 → K/4");
    assert_eq!(r.dense_gemm.k, 256);
    let row = r.sparse.as_ref().unwrap();
    // Blocked ELLPACK at 1:4 with 16-bit values: values are 1/4 of dense,
    // metadata adds 2 bits per value → ratio = 4 / (1 + 2/16) = 3.56.
    let ratio = row.original_bytes as f64 / row.new_filter_bytes() as f64;
    assert!((3.4..=3.7).contains(&ratio), "compression ratio {ratio}");
}

#[test]
fn dram_technology_ordering_hbm_beats_ddr3() {
    use scale_sim::mem::DramSpec;
    let gemm = GemmShape::new(128, 64, 256);
    let run = |spec| {
        let mut config = small_config();
        config.enable_dram = true;
        config.dram = DramIntegration::for_spec(spec, 1, 1.0e9);
        ScaleSim::new(config).run_gemm("g", gemm).total_cycles()
    };
    let hbm = run(DramSpec::hbm2());
    let ddr3 = run(DramSpec::ddr3_1600());
    assert!(
        hbm <= ddr3,
        "HBM2 ({hbm}) must not lose to DDR3-1600 ({ddr3})"
    );
}

#[test]
fn cfg_file_drives_the_engine() {
    let cfg_text = "\
[architecture_presets]
ArrayHeight : 16
ArrayWidth : 16
IfmapSramSzkB : 64
FilterSramSzkB : 64
OfmapSramSzkB : 32
Dataflow : os
Bandwidth : 16
";
    let config = scale_sim::scalesim::parse_cfg(cfg_text).unwrap();
    let r = ScaleSim::new(config).run_gemm("g", GemmShape::new(32, 32, 32));
    assert_eq!(r.report.compute.macs, 32 * 32 * 32);
}

#[test]
fn run_reports_are_well_formed_csv() {
    let sim = ScaleSim::new(small_config());
    let net = workloads::alexnet();
    let topo = scale_sim::systolic::Topology::from_layers("head", net.layers()[..2].to_vec());
    let run = sim.run_topology(&topo);
    let csv = run.compute_report_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 3);
    let header_cols = lines[0].split(',').count();
    for l in &lines[1..] {
        assert_eq!(l.split(',').count(), header_cols);
    }
}

#[test]
fn dram_power_flows_through_the_engine() {
    // The §V three-step flow now carries the IDD power model: every layer
    // simulated with DRAM enabled reports a consistent energy breakdown,
    // and the DRAM report CSV exposes it.
    let mut config = small_config();
    config.enable_dram = true;
    let sim = ScaleSim::new(config);
    let mut run = scale_sim::RunResult::default();
    for (name, gemm) in [
        ("square", GemmShape::new(128, 128, 128)),
        ("skinny", GemmShape::new(256, 64, 96)),
    ] {
        let r = sim.run_gemm(name, gemm);
        let d = r.dram.as_ref().unwrap();
        assert!(d.energy.read_pj > 0.0, "{name}");
        assert!(d.energy.total_pj() >= d.energy.dynamic_pj());
        assert!(d.energy.pj_per_bit() > 0.5 && d.energy.pj_per_bit() < 100.0);
        run.layers.push(r);
    }
    assert!(run.total_dram_energy_mj() > 0.0);
    let csv = run.dram_report_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 3, "header + one row per layer");
    let cols = lines[0].split(',').count();
    for l in &lines[1..] {
        assert_eq!(l.split(',').count(), cols);
    }
}

#[test]
fn mesh_partition_pipeline_composes_with_tensor_cores() {
    // §III end to end: a NoP mesh derives the latency profile, the
    // non-uniform split distributes a ViT feed-forward GEMM, each chiplet
    // is a TensorCore whose cycles come from the analytical model, and the
    // final makespan improves on the uniform split.
    use scale_sim::multicore::{
        non_uniform_split, uniform_split_makespan, MemoryPortPlacement, NopMesh, SimdUnit,
        TensorCore,
    };
    let core = TensorCore::new(ArrayShape::new(32, 32), SimdUnit::new(128));
    let gemm = GemmShape::new(197, 3072, 768); // ViT-Base FF1
    let probe = core.cycles_per_mac(Dataflow::WeightStationary, gemm);
    let mesh = NopMesh::new(4, 4, 2000, MemoryPortPlacement::WestEdge);
    let work = gemm.macs();
    let profile = mesh.profile(probe, (gemm.m * gemm.k * 2) as u64 / 16);
    let (shares, nonuniform) = non_uniform_split(&profile, work);
    assert_eq!(shares.iter().sum::<u64>(), work);
    let uniform = uniform_split_makespan(&profile, work);
    assert!(nonuniform <= uniform);
    // Column-0 chiplets sit closest to the west-edge ports.
    assert!(shares[0] >= shares[3], "{shares:?}");
}

#[test]
fn area_and_energy_share_one_arch_spec() {
    // The Accelergy-style ERT and ART consume the same architecture
    // description; bigger arrays must cost both more energy per cycle of
    // leakage and more silicon.
    use scale_sim::energy::{ArchSpec, AreaConfig, AreaTable, EnergyModel};
    let small = ArchSpec::new(16, 16, 64 << 10, 64 << 10, 32 << 10);
    let big = ArchSpec::new(64, 64, 64 << 10, 64 << 10, 32 << 10);
    let table = AreaTable::eyeriss_65nm();
    let a_small = AreaConfig::new(small).estimate(&table);
    let a_big = AreaConfig::new(big).estimate(&table);
    assert!(a_big.pe_array_mm2 > a_small.pe_array_mm2 * 10.0);
    let m_small = EnergyModel::eyeriss_65nm(small);
    let m_big = EnergyModel::eyeriss_65nm(big);
    let mut counts = scale_sim::energy::ActionCounts::default();
    counts.mac_gated = 1_000_000;
    let e_small = m_small.evaluate(&counts, 10_000).total_pj();
    let e_big = m_big.evaluate(&counts, 10_000).total_pj();
    assert!(e_big >= e_small, "bigger array cannot leak less");
}

#[test]
fn shipped_configs_and_topologies_are_usable() {
    // The repo ships ready-to-run .cfg presets and topology CSVs (like the
    // Python distribution); every combination must parse, and a small
    // layer must simulate under each preset.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut configs = 0;
    let mut sweep_specs = 0;
    for entry in std::fs::read_dir(root.join("configs")).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        if path.extension().is_some_and(|e| e == "toml") {
            // Sweep specs (`scalesim sweep -s`) ship alongside the .cfg
            // presets; the example must expand to a real grid over at
            // least two workloads.
            let spec = scale_sim::scalesim::sweep::SweepSpec::parse(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert!(
                spec.grid_size() >= 24,
                "{}: example sweep must cover >= 24 grid points",
                path.display()
            );
            assert!(
                spec.topologies.len() >= 2,
                "{}: example sweep must cover >= 2 topologies",
                path.display()
            );
            for topo in &spec.topologies {
                assert!(root.join(topo).exists(), "{topo} missing");
            }
            sweep_specs += 1;
            continue;
        }
        let config = scale_sim::scalesim::parse_cfg(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let r = ScaleSim::new(config).run_gemm("probe", GemmShape::new(64, 64, 64));
        assert!(r.total_cycles() > 0, "{}", path.display());
        configs += 1;
    }
    assert!(configs >= 3, "expected at least three shipped configs");
    assert!(sweep_specs >= 1, "expected the example sweep spec");

    let mut topologies = 0;
    for entry in std::fs::read_dir(root.join("topologies")).unwrap() {
        let path = entry.unwrap().path();
        let csv = std::fs::read_to_string(&path).unwrap();
        let stem = path.file_stem().unwrap().to_string_lossy().to_string();
        let topo = if stem.ends_with("_gemm") {
            scale_sim::systolic::Topology::parse_gemm_csv(&stem, &csv)
        } else {
            scale_sim::systolic::Topology::parse_conv_csv(&stem, &csv)
        }
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!topo.is_empty(), "{}", path.display());
        // Round-trip: re-emitting and re-parsing reproduces the layers.
        let reparsed = if stem.ends_with("_gemm") {
            scale_sim::systolic::Topology::parse_gemm_csv(&stem, &topo.to_csv())
        } else {
            scale_sim::systolic::Topology::parse_conv_csv(&stem, &topo.to_csv())
        }
        .unwrap();
        assert_eq!(topo, reparsed, "{} round-trip", path.display());
        topologies += 1;
    }
    assert!(topologies >= 7, "expected the seven shipped workloads");
}
