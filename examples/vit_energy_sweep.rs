//! The headline experiment of the paper's abstract: sweep the systolic
//! array size for ViT-Base and compare latency-only vs energy-aware
//! conclusions.
//!
//! "A 128×128 array is 6.53× faster than a 32×32 array for ViT-base,
//!  using only latency as a metric. However, SCALE-Sim v3 finds that
//!  32×32 is 2.86× more energy-efficient … For EdP, 64×64 outperforms
//!  both."
//!
//! Run with: `cargo run --release --example vit_energy_sweep`

use scale_sim::systolic::{ArrayShape, Dataflow, MemoryConfig};
use scale_sim::workloads::vit_base;
use scale_sim::{ScaleSim, ScaleSimConfig};

fn main() {
    let vit = vit_base();
    println!(
        "workload: {} ({} layers, {:.1} GMACs)\n",
        vit.name(),
        vit.len(),
        vit.total_macs() as f64 / 1e9
    );
    println!(
        "{:>9} {:>16} {:>12} {:>16} {:>14}",
        "array", "cycles/layer", "energy(mJ)", "EdP(cyc·mJ)/1e6", "util(%)"
    );

    let mut rows = Vec::new();
    for n in [32usize, 64, 128] {
        let mut config = ScaleSimConfig::default();
        config.core.array = ArrayShape::new(n, n);
        config.core.dataflow = Dataflow::WeightStationary;
        config.core.memory = MemoryConfig::from_kilobytes(2048, 2048, 2048, 2);
        config.enable_energy = true;
        let run = ScaleSim::new(config).run_topology(&vit);
        let layers = run.layers.len() as f64;
        let cyc_per_layer = run.total_compute_cycles() as f64 / layers;
        let energy = run.total_energy_mj();
        let edp = run.total_compute_cycles() as f64 * energy;
        let util: f64 = run
            .layers
            .iter()
            .map(|l| l.report.compute.utilization)
            .sum::<f64>()
            / layers;
        println!(
            "{:>9} {:>16.0} {:>12.2} {:>16.2} {:>14.1}",
            format!("{n}x{n}"),
            cyc_per_layer,
            energy,
            edp / 1e6,
            util * 100.0
        );
        rows.push((n, run.total_compute_cycles(), energy, edp));
    }

    let speedup = rows[0].1 as f64 / rows[2].1 as f64;
    let eff = (rows[2].2 / rows[2].1 as f64 * rows[0].1 as f64) / rows[0].2;
    println!("\n128x128 speedup over 32x32 (latency)        : {speedup:.2}x (paper: 6.53x)");
    println!(
        "32x32 energy advantage (iso-work, total mJ) : {:.2}x (paper: 2.86x)",
        rows[2].2 / rows[0].2
    );
    let _ = eff;
    let best_edp = rows
        .iter()
        .min_by(|a, b| a.3.partial_cmp(&b.3).unwrap())
        .unwrap();
    println!(
        "best EdP                                     : {0}x{0} (paper: 64x64)",
        best_edp.0
    );
}
