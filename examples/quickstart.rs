//! Quickstart: simulate one convolution layer on a small systolic array
//! and print the classic SCALE-Sim compute report, then turn on the v3
//! features one by one.
//!
//! Run with: `cargo run --release --example quickstart`

use scale_sim::systolic::{ArrayShape, Dataflow, GemmShape, MemoryConfig};
use scale_sim::{ScaleSim, ScaleSimConfig};

fn main() {
    // A ResNet-18-like 3×3 convolution lowered to GEMM:
    // M = 56·56 output pixels, N = 64 filters, K = 3·3·64 contraction.
    let layer = GemmShape::new(56 * 56, 64, 3 * 3 * 64);

    // --- v2 parity: compute + ideal bandwidth memory ---------------------
    let mut config = ScaleSimConfig::default();
    config.core.array = ArrayShape::new(32, 32);
    config.core.dataflow = Dataflow::OutputStationary;
    config.core.memory = MemoryConfig::from_kilobytes(256, 256, 128, 2);

    let sim = ScaleSim::new(config.clone());
    let r = sim.run_gemm("conv2_1", layer);
    println!("== SCALE-Sim v2 view (ideal memory) ==");
    println!(
        "  compute cycles     : {}",
        r.report.compute.total_compute_cycles
    );
    println!("  stall cycles       : {}", r.report.memory.stall_cycles);
    println!("  total cycles       : {}", r.total_cycles());
    println!(
        "  PE utilization     : {:.1} %",
        r.report.compute.utilization * 100.0
    );
    println!(
        "  mapping efficiency : {:.1} %",
        r.report.compute.mapping_efficiency * 100.0
    );
    println!(
        "  DRAM reads/writes  : {} / {} words",
        r.report.memory.total_dram_reads(),
        r.report.memory.total_dram_writes()
    );

    // --- v3: add the cycle-accurate DRAM (three-step flow of §V-B) -------
    config.enable_dram = true;
    let sim = ScaleSim::new(config.clone());
    let r = sim.run_gemm("conv2_1", layer);
    let dram = r.dram.as_ref().expect("dram enabled");
    println!("\n== + Ramulator-class DRAM (DDR4-2400, 1 channel) ==");
    println!(
        "  total cycles       : {}  (stalls {})",
        r.total_cycles(),
        dram.summary.stall_cycles
    );
    println!("  avg read latency   : {:.1} mem cycles", dram.avg_latency);
    println!(
        "  row hit rate       : {:.1} %",
        dram.stats.row_hit_rate() * 100.0
    );
    println!("  memory throughput  : {:.0} MB/s", dram.throughput_mbps);

    // --- v3: add energy/power (§VII) --------------------------------------
    config.enable_energy = true;
    let sim = ScaleSim::new(config);
    let r = sim.run_gemm("conv2_1", layer);
    let e = r.energy.as_ref().expect("energy enabled");
    println!("\n== + Accelergy-class energy ==");
    println!("  total energy       : {:.4} mJ", e.total_mj());
    println!("  average power      : {:.3} W", e.avg_power_w());
    println!("  energy-delay prod. : {:.1} cycles·mJ", e.edp_cycles_mj());
    println!(
        "  data-movement share: {:.1} %",
        e.data_movement_fraction() * 100.0
    );
}
