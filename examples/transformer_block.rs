//! Transformer encoder block on a tensor core: MXU + SIMD pipelining.
//!
//! The paper's §III-C tensor cores pair the systolic matrix unit with a
//! vector unit for softmax / layer-norm / GELU. This example builds the op
//! chain of one ViT encoder layer, runs it serially and batch-pipelined,
//! and shows where the time goes as the vector unit widens.
//!
//! Run with: `cargo run --release --example transformer_block`

use scale_sim::multicore::{PipelineSchedule, SimdUnit, TensorCore, TransformerBlock};
use scale_sim::systolic::{ArrayShape, Dataflow};

fn main() {
    let variants = [
        ("ViT-Small", TransformerBlock::vit_small()),
        ("ViT-Base", TransformerBlock::vit_base()),
        ("ViT-Large", TransformerBlock::vit_large()),
    ];
    let sched = PipelineSchedule::new(Dataflow::WeightStationary);
    let batches = 8;

    println!("== one encoder layer, 128x128 MXU + 128-lane SIMD, batch {batches} ==");
    println!(
        "{:<10} {:>14} {:>16} {:>9} {:>11} {:>10}",
        "model", "cyc/batch", "8-batch makespan", "speedup", "simd share", "MACs/layer"
    );
    let core = TensorCore::new(ArrayShape::new(128, 128), SimdUnit::new(128));
    for (name, block) in &variants {
        let r = sched.run(&core, &block.ops(), batches);
        println!(
            "{:<10} {:>12} {:>14} {:>8.2}x {:>10.1}% {:>10.2e}",
            name,
            r.serial_cycles,
            r.pipelined_cycles,
            r.speedup(),
            r.simd_fraction() * 100.0,
            block.macs() as f64,
        );
    }

    // The vector unit is the knob: a narrow SIMD unit starves the MXU on
    // softmax-heavy layers; widening it shifts the bottleneck back.
    println!("\n== ViT-Base, sweeping the vector unit width ==");
    println!(
        "{:<7} {:>12} {:>11} {:>9} {:>9}",
        "lanes", "serial cyc", "simd share", "mxu util", "speedup"
    );
    let block = TransformerBlock::vit_base();
    for lanes in [16, 64, 128, 512, 2048] {
        let core = TensorCore::new(ArrayShape::new(128, 128), SimdUnit::new(lanes));
        let r = sched.run(&core, &block.ops(), batches);
        println!(
            "{:<7} {:>12} {:>10.1}% {:>8.1}% {:>8.2}x",
            lanes,
            r.serial_cycles,
            r.simd_fraction() * 100.0,
            r.mxu_utilization() * 100.0,
            r.speedup(),
        );
    }

    // Long sequences shift work to the quadratic softmax — the reason
    // vector units keep growing.
    println!("\n== sequence-length scaling (d_model 768, 12 heads) ==");
    println!("{:<8} {:>11} {:>12}", "seq len", "simd share", "serial cyc");
    let core = TensorCore::new(ArrayShape::new(128, 128), SimdUnit::new(128));
    for seq in [128, 256, 512, 1024, 2048] {
        let block = TransformerBlock::new(seq, 768, 12, 3072);
        let r = sched.run(&core, &block.ops(), 1);
        println!(
            "{:<8} {:>10.1}% {:>12}",
            seq,
            r.simd_fraction() * 100.0,
            r.serial_cycles
        );
    }
}
