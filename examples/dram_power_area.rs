//! DRAM technology and channel-count trade study: latency, power, area.
//!
//! The paper's Fig. 9 shows throughput scaling with channels and notes the
//! silicon costs. With the IDD power model (scalesim-mem) and the area
//! reference table (scalesim-energy), the full trade-off is visible: this
//! example streams the same workload through every DRAM technology preset
//! and then sweeps DDR4 channel counts.
//!
//! Run with: `cargo run --release --example dram_power_area`

use scale_sim::energy::{ArchSpec, AreaConfig, AreaTable};
use scale_sim::mem::power::DramEnergyBreakdown;
use scale_sim::mem::{AccessKind, DramConfig, DramSpec, DramSystem};

/// Streams `n` sequential reads and returns `(cycles, energy)`.
fn stream_reads(spec: DramSpec, channels: usize, n: u64) -> (u64, DramEnergyBreakdown) {
    let mut sys = DramSystem::new(DramConfig {
        spec,
        channels,
        read_queue: 128,
        write_queue: 128,
        ..Default::default()
    });
    let mut issued = 0u64;
    let mut addr = 0u64;
    while issued < n {
        while issued < n {
            match sys.try_enqueue(AccessKind::Read, addr) {
                Some(_) => {
                    addr += spec.org.burst_bytes() as u64;
                    issued += 1;
                }
                None => break,
            }
        }
        sys.tick();
        sys.pop_completions();
    }
    sys.drain();
    let stats = sys.stats();
    let energy = DramEnergyBreakdown::from_stats(&spec, &stats, channels);
    (stats.end_cycle, energy)
}

fn main() {
    let n = 16_384u64;

    println!("== 16k-burst read stream across the seven technology presets ==");
    println!(
        "{:<12} {:>9} {:>10} {:>9} {:>10} {:>9}",
        "device", "peak MB/s", "wall ns", "pJ/bit", "power mW", "GB/s/W"
    );
    for spec in DramSpec::presets() {
        let (cycles, energy) = stream_reads(spec, 1, n);
        let wall_ns = cycles as f64 * spec.timing.tCK_ps as f64 * 1e-3;
        let mw = energy.avg_power_mw();
        let gbps = n as f64 * spec.org.burst_bytes() as f64 / wall_ns; // bytes/ns = GB/s
        println!(
            "{:<12} {:>9.0} {:>10.0} {:>9.2} {:>10.1} {:>9.1}",
            spec.name,
            spec.peak_mbps(),
            wall_ns,
            energy.pj_per_bit(),
            mw,
            gbps / (mw * 1e-3),
        );
    }

    println!("\n== DDR4-2400: channel-count sweep (same stream split across channels) ==");
    println!(
        "{:<9} {:>10} {:>9} {:>10} {:>11}",
        "channels", "wall ns", "pJ/bit", "power mW", "ctrl mm2"
    );
    let arch = ArchSpec::new(128, 128, 8192 << 10, 8192 << 10, 2048 << 10);
    let table = AreaTable::eyeriss_65nm();
    for channels in [1usize, 2, 4, 8] {
        let spec = DramSpec::ddr4_2400();
        let (cycles, energy) = stream_reads(spec, channels, n);
        let wall_ns = cycles as f64 * spec.timing.tCK_ps as f64 * 1e-3;
        let area = AreaConfig::new(arch)
            .with_dram_channels(channels)
            .estimate(&table);
        println!(
            "{:<9} {:>10.0} {:>9.2} {:>10.1} {:>11.1}",
            channels,
            wall_ns,
            energy.pj_per_bit(),
            energy.avg_power_mw(),
            area.dram_ctrl_mm2,
        );
    }
    let tpu_core = AreaConfig::new(arch).estimate(&table).core_mm2();
    let edge_arch = ArchSpec::new(32, 32, 256 << 10, 256 << 10, 128 << 10);
    let edge_core = AreaConfig::new(edge_arch).estimate(&table).core_mm2();
    println!(
        "\n(for scale: the 128x128 TPU-class core is {tpu_core:.0} mm2, a 32x32 \
         edge-class core {edge_core:.0} mm2 — at 8 channels the controllers \
         already exceed the entire edge core)"
    );
}
