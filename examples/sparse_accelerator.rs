//! Sparse accelerator study (§IV): run ResNet-18 with layer-wise and
//! row-wise N:M sparsity, print the compute-cycle savings and the
//! SPARSE_REPORT storage breakdown (blocked-ELLPACK values + metadata).
//!
//! Run with: `cargo run --release --example sparse_accelerator`

use scale_sim::sparse::NmRatio;
use scale_sim::systolic::{ArrayShape, Dataflow, MemoryConfig};
use scale_sim::workloads::resnet18;
use scale_sim::{ScaleSim, ScaleSimConfig, SparsityMode};

fn base_config() -> ScaleSimConfig {
    let mut config = ScaleSimConfig::default();
    config.core.array = ArrayShape::new(32, 32);
    config.core.dataflow = Dataflow::WeightStationary;
    config.core.memory = MemoryConfig::from_kilobytes(512, 512, 256, 2);
    config
}

fn main() {
    let net = resnet18();
    let dense = ScaleSim::new(base_config()).run_topology(&net);
    println!("ResNet-18 on 32x32 WS array");
    println!("  dense total cycles  : {}", dense.total_cycles());

    println!("\n-- layer-wise N:M sparsity ----------------------------------");
    println!(
        "{:>8} {:>14} {:>9} {:>14} {:>14}",
        "ratio", "cycles", "speedup", "filter(dense)", "filter(sparse)"
    );
    for (n, m) in [(1usize, 4usize), (2, 4), (4, 4)] {
        let mut cfg = base_config();
        cfg.sparsity = Some(SparsityMode::LayerWise(NmRatio::new(n, m).unwrap()));
        let run = ScaleSim::new(cfg).run_topology(&net);
        let orig: u64 = run
            .layers
            .iter()
            .filter_map(|l| l.sparse.as_ref())
            .map(|s| s.original_bytes)
            .sum();
        let new: u64 = run
            .layers
            .iter()
            .filter_map(|l| l.sparse.as_ref())
            .map(|s| s.new_filter_bytes())
            .sum();
        println!(
            "{:>8} {:>14} {:>8.2}x {:>13}kB {:>13}kB",
            format!("{n}:{m}"),
            run.total_cycles(),
            dense.total_cycles() as f64 / run.total_cycles() as f64,
            orig / 1024,
            new / 1024
        );
    }

    println!("\n-- row-wise sparsity (random N <= M/2 per block) ------------");
    println!("{:>8} {:>14} {:>9}", "block", "cycles", "speedup");
    for block in [4usize, 8, 16, 32] {
        let mut cfg = base_config();
        cfg.sparsity = Some(SparsityMode::RowWise { block, seed: 42 });
        let run = ScaleSim::new(cfg).run_topology(&net);
        println!(
            "{:>8} {:>14} {:>8.2}x",
            format!("M={block}"),
            run.total_cycles(),
            dense.total_cycles() as f64 / run.total_cycles() as f64
        );
    }

    println!("\nSPARSE_REPORT.csv (first layers, 2:4):");
    let mut cfg = base_config();
    cfg.sparsity = Some(SparsityMode::LayerWise(NmRatio::new(2, 4).unwrap()));
    let run = ScaleSim::new(cfg).run_topology(&net);
    for line in run.sparse_report_csv().lines().take(6) {
        println!("  {line}");
    }
}
