//! Batch client for a running `scalesim serve --listen` instance.
//!
//! Demonstrates the JSON-lines wire protocol end to end: it pipelines a
//! batch of requests over one TCP connection — a version probe, a ViT-
//! Base run, the *same* run again (hitting the server's warm plan
//! cache), and a small design-space sweep — then reads the responses
//! back in order and prints the summaries with per-request latency.
//!
//! ```text
//! # against an already-running server:
//! scalesim serve --listen 127.0.0.1:7878 &
//! cargo run --example client -- 127.0.0.1:7878
//!
//! # or self-contained (no argument): the example starts an in-process
//! # server on an ephemeral port and talks to itself.
//! cargo run --example client
//! ```
//!
//! The second, warm run answers noticeably faster than the first: the
//! server keeps one plan cache alive across requests, so repeated
//! workloads skip planning entirely. Protocol reference: docs/API.md.

use scalesim::service::SimService;
use scalesim_api::{
    wire, ConfigSource, Features, RunSpec, SimRequest, SimResponse, SweepRequest, TopologySource,
};
use scalesim_workloads::vit;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

fn requests() -> Vec<(String, SimRequest)> {
    // ViT-Base encoder blocks as inline GEMM rows — the client carries
    // the workload; the server needs no local files.
    let vit_csv = vit::vit_base().to_csv();
    let run = SimRequest::Run(RunSpec {
        config: ConfigSource::Default,
        topology: TopologySource::inline("vit_base", vit_csv),
        features: Features {
            energy: true,
            ..Default::default()
        },
    });
    let sweep = SimRequest::Sweep(SweepRequest {
        spec: ConfigSource::Inline(
            "[sweep]\nname = client-demo\n[grid]\narray = 16x16, 32x32\nenergy = true\n".into(),
        ),
        base_config: ConfigSource::Default,
        topologies: vec![TopologySource::inline(
            "mlp",
            "fc1, 128, 256, 512,\nfc2, 128, 512, 256,\n",
        )],
        shards: 1,
    });
    vec![
        ("version".into(), SimRequest::Version),
        ("vit-cold".into(), run.clone()),
        ("vit-warm".into(), run),
        ("sweep".into(), sweep),
        ("stats".into(), SimRequest::Stats),
    ]
}

fn describe(response: &SimResponse) -> String {
    match response {
        SimResponse::Version(v) => format!("{} (api v{})", v.version, v.api),
        SimResponse::Run(r) => format!(
            "{} layers, {} cycles, {:.3} mJ, {} reports",
            r.summary.layers,
            r.summary.total_cycles,
            r.summary.energy_mj,
            r.reports.len()
        ),
        SimResponse::Sweep(s) => format!(
            "{} points x {} runs, pareto: {}",
            s.grid_points,
            s.runs,
            s.pareto_frontier.join(", ")
        ),
        SimResponse::Scaleout(s) => format!(
            "{} chips ({}), {} cycles ({} exposed comm)",
            s.chips, s.strategy, s.total_cycles, s.exposed_cycles
        ),
        SimResponse::Llm(l) => format!(
            "{} {} @ ctx {}: {} cycles, {:.1}% util",
            l.workload,
            l.phase,
            l.context,
            l.summary.total_cycles,
            l.summary.utilization * 100.0
        ),
        SimResponse::Area(a) => format!("{:.2} mm2", a.total_mm2),
        SimResponse::Stats(s) => format!(
            "cache {:.0}% hit ({} plans, {} evicted), {} served, p99 {} us",
            s.cache_hit_rate * 100.0,
            s.cache_plans,
            s.cache_evictions,
            s.completed,
            s.latency_p99_us
        ),
        SimResponse::Trace(t) => format!(
            "tracing {}, {} events ({} trace bytes)",
            if t.enabled { "on" } else { "off" },
            t.events,
            t.trace.len()
        ),
    }
}

fn main() -> std::io::Result<()> {
    // Connect to the given server, or start one in-process so the
    // example is runnable standalone.
    let addr = match std::env::args().nth(1) {
        Some(addr) => addr,
        None => {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?.to_string();
            eprintln!("no address given; serving in-process on {addr}");
            std::thread::spawn(move || {
                let service = SimService::new();
                let _ = scalesim::serve::serve_listener(&service, listener, 2);
            });
            addr
        }
    };

    let batch = requests();
    let mut stream = TcpStream::connect(&addr)?;
    eprintln!("connected to {addr}; pipelining {} requests", batch.len());

    // Write the whole batch first (the protocol answers strictly in
    // order), then drain the responses.
    for (id, request) in &batch {
        let line = wire::encode_request(Some(id), request);
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
    }
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let started = std::time::Instant::now();
    let mut last = started;
    for (sent_id, _) in &batch {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            eprintln!("server closed the connection early");
            break;
        }
        let elapsed = last.elapsed();
        last = std::time::Instant::now();
        let (id, result) = wire::decode_response(line.trim_end());
        let id = id.unwrap_or_else(|| sent_id.clone());
        match result {
            Ok(response) => {
                println!(
                    "{id:<10} {:>8.1} ms  {}",
                    elapsed.as_secs_f64() * 1e3,
                    describe(&response)
                );
            }
            Err(e) => println!(
                "{id:<10} {:>8.1} ms  ERROR {e}",
                elapsed.as_secs_f64() * 1e3
            ),
        }
    }
    println!(
        "batch done in {:.1} ms (vit-warm should be faster than vit-cold: \
         the server's plan cache stays hot across requests)",
        started.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}
