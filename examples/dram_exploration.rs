//! Main-memory exploration (§V): run a memory-hungry layer against
//! different DRAM technologies, channel counts and request-queue sizes,
//! and show how much latency the v2 ideal-memory model hides.
//!
//! Run with: `cargo run --release --example dram_exploration`

use scale_sim::mem::DramSpec;
use scale_sim::systolic::{ArrayShape, Dataflow, GemmShape, MemoryConfig};
use scale_sim::{DramIntegration, ScaleSim, ScaleSimConfig};

fn config_with(dram: DramIntegration) -> ScaleSimConfig {
    let mut config = ScaleSimConfig::default();
    config.core.array = ArrayShape::new(32, 32);
    config.core.dataflow = Dataflow::OutputStationary;
    config.core.memory = MemoryConfig::from_kilobytes(64, 64, 32, 2);
    config.dram = dram;
    config.enable_dram = true;
    config
}

fn main() {
    // An early ResNet-18 conv: large ifmap, heavy streaming.
    let layer = GemmShape::new(56 * 56, 64, 64 * 9);

    println!("-- DRAM technology sweep (1 channel, queues 128) -------------");
    println!(
        "{:>14} {:>12} {:>12} {:>13} {:>11}",
        "device", "cycles", "stalls", "avg lat(mem)", "row hit %"
    );
    for spec in [
        DramSpec::ddr3_1600(),
        DramSpec::ddr4_2400(),
        DramSpec::lpddr4_3200(),
        DramSpec::gddr5_6000(),
        DramSpec::hbm2(),
    ] {
        let cfg = config_with(DramIntegration::for_spec(spec, 1, 1.0e9));
        let r = ScaleSim::new(cfg).run_gemm("conv", layer);
        let d = r.dram.as_ref().unwrap();
        println!(
            "{:>14} {:>12} {:>12} {:>13.1} {:>11.1}",
            spec.name,
            r.total_cycles(),
            d.summary.stall_cycles,
            d.avg_latency,
            d.stats.row_hit_rate() * 100.0
        );
    }

    println!("\n-- channel scaling (DDR4-2400) -------------------------------");
    println!(
        "{:>9} {:>12} {:>12} {:>16}",
        "channels", "cycles", "stalls", "throughput MB/s"
    );
    for channels in [1usize, 2, 4, 8] {
        let cfg = config_with(DramIntegration {
            channels,
            ..Default::default()
        });
        let r = ScaleSim::new(cfg).run_gemm("conv", layer);
        let d = r.dram.as_ref().unwrap();
        println!(
            "{:>9} {:>12} {:>12} {:>16.0}",
            channels,
            r.total_cycles(),
            d.summary.stall_cycles,
            d.throughput_mbps
        );
    }

    println!("\n-- request queue sizing (Fig. 10's knob) ---------------------");
    println!(
        "{:>7} {:>12} {:>12} {:>9}",
        "queue", "cycles", "stalls", "stall %"
    );
    for q in [32usize, 128, 512] {
        let cfg = config_with(DramIntegration {
            read_queue: q,
            write_queue: q,
            ..Default::default()
        });
        let r = ScaleSim::new(cfg).run_gemm("conv", layer);
        let d = r.dram.as_ref().unwrap();
        println!(
            "{:>7} {:>12} {:>12} {:>8.1}%",
            q,
            r.total_cycles(),
            d.summary.stall_cycles,
            d.summary.stall_fraction() * 100.0
        );
    }

    println!("\nv2 would report only the ideal-memory latency; the rows above");
    println!("are what §V's integration adds to the picture.");
}
