//! Multi tensor-core exploration (§III): spatial vs spatio-temporal
//! partitioning, the shared-L2 deduplication win, and non-uniform
//! NoP-aware workload splits for chiplet grids.
//!
//! Run with: `cargo run --release --example multicore_partitioning`

use scale_sim::multicore::{
    best_partition, memory_footprint_words, non_uniform_split, uniform_split_makespan, L2Config,
    L2Report, MappingDims, NopProfile, PartitionGrid, PartitionObjective, PartitionScheme,
};
use scale_sim::systolic::{ArrayShape, Dataflow, GemmShape};

fn main() {
    let gemm = GemmShape::new(5000, 1000, 10000);
    let dims = MappingDims::new(Dataflow::OutputStationary, gemm);
    let array = ArrayShape::new(16, 16);
    let cores = 64;

    println!("GEMM {gemm} on {cores} cores of {array} PEs\n");
    println!("-- partition search (compute-optimized) ---------------------");
    println!(
        "{:>17} {:>8} {:>14} {:>18}",
        "scheme", "grid", "cycles", "footprint(words)"
    );
    for scheme in PartitionScheme::ALL {
        let best = best_partition(
            array,
            scheme,
            dims,
            cores,
            PartitionObjective::ComputeCycles,
            None,
        );
        println!(
            "{:>17} {:>8} {:>14} {:>18}",
            scheme.label(),
            format!("{}x{}", best.grid.pr, best.grid.pc),
            best.cycles,
            best.footprint_words
        );
    }

    println!("\n-- shared L2 deduplication (Fig. 4) --------------------------");
    let grid = PartitionGrid::new(8, 8);
    let l2 = L2Config::default();
    let with = memory_footprint_words(PartitionScheme::Spatial, dims, grid, Some(&l2));
    let without = memory_footprint_words(PartitionScheme::Spatial, dims, grid, None);
    let report = L2Report::evaluate(PartitionScheme::Spatial, dims, grid);
    println!("  L1-only footprint   : {without} words");
    println!(
        "  with shared L2      : {with} words  ({:.1}x smaller)",
        without as f64 / with as f64
    );
    println!("  required L2 (2x buf): {} words", report.required_words);
    println!("  L2->L1 NoC traffic  : {} words", report.l1_fill_words);

    println!("\n-- non-uniform NoP partitioning (Simba-style, §III-D) --------");
    let profile = NopProfile::grid_west_edge(4, 4, 2000, 1.0);
    let work = 1_000_000u64;
    let (shares, makespan) = non_uniform_split(&profile, work);
    let uniform = uniform_split_makespan(&profile, work);
    println!("  uniform split makespan     : {uniform} cycles");
    println!(
        "  non-uniform split makespan : {makespan} cycles ({:.1}% better)",
        (uniform - makespan) as f64 / uniform as f64 * 100.0
    );
    println!(
        "  per-column work shares     : {:?}",
        (0..4).map(|c| shares[c]).collect::<Vec<_>>()
    );
}
