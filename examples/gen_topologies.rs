//! Regenerates the shipped `topologies/*.csv` files from the workloads
//! crate — the CSV inputs the `scalesim` CLI consumes, in the same format
//! the Python SCALE-Sim distributes.
//!
//! Run with: `cargo run --release --example gen_topologies`
//!
//! CNN topologies are written in conv form (8 columns); transformer
//! workloads, being GEMM sequences, are written in GEMM form (`--gemm`).

use scale_sim::systolic::Layer;
use scale_sim::workloads::all_workloads;
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("topologies");
    fs::create_dir_all(&dir)?;
    for net in all_workloads() {
        // Networks containing conv layers are written in conv form, with
        // any GEMM layers (FC / detector heads) encoded as the equivalent
        // 1×1 convolution over an `M×1` ifmap — the Python tool's own
        // convention, and an exact encoding (`to_gemm` recovers M, N, K).
        // Pure-GEMM networks (transformers) are written in GEMM form.
        let conv_form = net.iter().any(|l| matches!(l, Layer::Conv(_)));
        let suffix = if conv_form { "" } else { "_gemm" };
        let path = dir.join(format!("{}{suffix}.csv", net.name().replace('-', "_")));
        let content = if conv_form {
            let mut out = String::from(
                "Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, \
                 Channels, Num Filter, Strides,\n",
            );
            for layer in net.iter() {
                match layer {
                    Layer::Conv(c) => out.push_str(&format!(
                        "{}, {}, {}, {}, {}, {}, {}, {},\n",
                        c.name,
                        c.ifmap_h,
                        c.ifmap_w,
                        c.filter_h,
                        c.filter_w,
                        c.channels,
                        c.num_filters,
                        c.stride
                    )),
                    Layer::Gemm { name, shape } => out.push_str(&format!(
                        "{}, {}, 1, 1, 1, {}, {}, 1,\n",
                        name, shape.m, shape.k, shape.n
                    )),
                }
            }
            out
        } else {
            let mut out = String::from("Layer, M, K, N,\n");
            for layer in net.iter() {
                let g = layer.gemm();
                out.push_str(&format!("{}, {}, {}, {},\n", layer.name(), g.m, g.k, g.n));
            }
            out
        };
        fs::write(&path, content)?;
        println!(
            "wrote {} ({} layers, {})",
            path.display(),
            net.len(),
            if conv_form { "conv form" } else { "GEMM form" }
        );
    }
    Ok(())
}
